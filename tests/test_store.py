"""Persistent analysis store: hashing, recovery, invalidation, concurrency."""

import json
import multiprocessing

import pytest

from repro.core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from repro.engine import BatchEngine, JobSpec
from repro.engine.store import (
    AnalysisStore,
    PersistentCardinalityCache,
    cardinality_digest,
    job_digest,
    stable_digest,
)
from repro.isl.constraints import ConstraintSystem, ge, le
from repro.scop import ScopBuilder

LINE = 64


def _machine(levels=(1024, 8192)):
    return MachineModel(
        line_size=LINE,
        levels=tuple(CacheLevelSpec(size, f"L{i + 1}") for i, size in enumerate(levels)),
    )


def _transpose(n=8, m=7):
    b = ScopBuilder("transpose", context={"N": n, "M": m}, element_size=LINE)
    A = b.array("A", (n, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("j")]], writes=[B[b.v("j"), b.v("i")]])
    return b.build()


# ----------------------------------------------------------------------
# Stable hashing
# ----------------------------------------------------------------------
class TestStableDigest:
    def test_frozenset_order_insensitive(self):
        a = stable_digest(frozenset([("x", 1), ("y", 2), ("z", 3)]))
        b = stable_digest(frozenset([("z", 3), ("x", 1), ("y", 2)]))
        assert a == b

    def test_distinct_values_distinct_digests(self):
        assert stable_digest(("gemm", 1)) != stable_digest(("gemm", 2))

    def test_counting_problem_digest_matches_canonical_form(self):
        system = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", "i")])
        reordered = ConstraintSystem([le("j", "i"), ge("j", 0), le("i", 9), ge("i", 0)])
        assert cardinality_digest(system, ["i", "j"]) == cardinality_digest(reordered, ["i", "j"])
        assert cardinality_digest(system, ["i", "j"]) != cardinality_digest(system, ["j", "i"])

    def test_job_digest_tracks_spec_identity(self):
        a = JobSpec(kernel="gemm", dataset="mini", levels=(1024,))
        b = JobSpec(kernel="gemm", dataset="mini", levels=(2048,))
        assert job_digest(a) == job_digest(JobSpec(kernel="gemm", dataset="mini", levels=(1024,)))
        assert job_digest(a) != job_digest(b)

    def test_scop_backed_job_digest(self):
        # Scop identities embed QPoly index expressions (and possibly Div
        # symbols); they must digest, and structurally equal scops must agree.
        a = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,))
        b = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,))
        c = JobSpec(kernel="transpose", scop=_transpose(9, 7), levels=(1024,))
        assert job_digest(a) == job_digest(b)
        assert job_digest(a) != job_digest(c)

    def test_digest_stable_across_hash_seeds(self):
        # Frozenset iteration order depends on PYTHONHASHSEED; the digest
        # must not.  Recompute in subprocesses with forced distinct seeds.
        import subprocess
        import sys

        script = (
            "from repro.engine import JobSpec, job_digest;"
            "print(job_digest(JobSpec(kernel='gemm', dataset='mini', levels=(1024, 8192))))"
        )
        digests = set()
        for seed in ("0", "1", "12345"):
            output = subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
                check=True,
                cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
            )
            digests.add(output.stdout.strip())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# Store entry lifecycle
# ----------------------------------------------------------------------
class TestAnalysisStore:
    def test_round_trip_and_stats(self, tmp_path):
        store = AnalysisStore(tmp_path)
        assert store.get_cardinality("ab" * 32) is None
        store.put_cardinality("ab" * 32, 55)
        assert store.get_cardinality("ab" * 32) == 55
        assert (store.stats.hits, store.stats.misses, store.stats.writes) == (1, 1, 1)

    def test_version_mismatch_invalidates(self, tmp_path):
        writer = AnalysisStore(tmp_path, version="v1")
        writer.put_cardinality("cd" * 32, 7)
        reader = AnalysisStore(tmp_path, version="v2")
        assert reader.get_cardinality("cd" * 32) is None
        assert reader.stats.invalidations == 1
        # The stale entry was deleted, so the old version cannot resurrect it.
        stale = AnalysisStore(tmp_path, version="v1")
        assert stale.get_cardinality("cd" * 32) is None

    def test_corrupt_entry_recovered(self, tmp_path):
        store = AnalysisStore(tmp_path)
        store.put_cardinality("ef" * 32, 9)
        path = store._entry_path("cardinality", "ef" * 32)
        path.write_text('{"schema": 1, "version')  # truncated mid-write
        assert store.get_cardinality("ef" * 32) is None
        assert store.stats.invalidations == 1
        assert not path.exists()
        # A rewrite repopulates cleanly.
        store.put_cardinality("ef" * 32, 9)
        assert store.get_cardinality("ef" * 32) == 9

    def test_non_json_garbage_recovered(self, tmp_path):
        store = AnalysisStore(tmp_path)
        path = store._entry_path("result", "aa" * 32)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff garbage")
        assert store.get_result("aa" * 32) is None
        assert store.stats.invalidations == 1

    def test_lru_eviction_under_size_cap(self, tmp_path):
        store = AnalysisStore(tmp_path, max_bytes=2_000)
        for index in range(100):
            store.put_cardinality(f"{index:064d}", index)
        store._evict_lru()
        assert store.size_bytes() <= 2_000
        assert store.stats.evictions > 0
        assert store.entry_count() < 100

    def test_eviction_order_is_stable_for_same_tick_writes(self, tmp_path):
        """Entries published in the same mtime tick (routine under the mp
        pool) must evict in a deterministic order: ``st_mtime_ns`` first,
        then the path tiebreak — never filesystem enumeration order."""
        import os

        store = AnalysisStore(tmp_path, max_bytes=10_000)
        for index in range(8):
            store.put_cardinality(f"{index:064d}", index)
        # Force every entry onto the identical nanosecond stamp, so only the
        # path tiebreak can order them deterministically.
        for path in store._entries():
            os.utime(path, ns=(1_000_000_000, 1_000_000_000))
        survivors = []
        for trial in range(2):
            for path in store._entries():
                os.utime(path, ns=(1_000_000_000, 1_000_000_000))
            store.max_bytes = store.size_bytes() - 1  # evict exactly the stalest
            store._evict_lru()
            survivors.append(sorted(p.name for p in store._entries()))
            if trial == 0:
                # Repopulate the evicted entry for the second trial.
                store.max_bytes = 10_000
                for index in range(8):
                    store.put_cardinality(f"{index:064d}", index)
        assert survivors[0] == survivors[1]
        # The path tiebreak means the lexicographically smallest digest went.
        assert f"{0:064d}.json" not in survivors[0]

    def test_invalid_size_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            AnalysisStore(tmp_path, max_bytes=0)

    def test_wipe(self, tmp_path):
        store = AnalysisStore(tmp_path)
        store.put_cardinality("11" * 32, 1)
        store.put_result("22" * 32, {"kernel": "x"})
        assert store.wipe() == 2
        assert store.entry_count() == 0


# ----------------------------------------------------------------------
# Persistent cardinality tier
# ----------------------------------------------------------------------
class TestPersistentCardinalityCache:
    def test_disk_tier_shared_across_instances(self, tmp_path):
        system = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", "i")])
        first = PersistentCardinalityCache(AnalysisStore(tmp_path))
        assert first.cardinality(system, ["i", "j"]) == 55
        assert (first.store_hits, first.store_misses) == (0, 1)
        second = PersistentCardinalityCache(AnalysisStore(tmp_path))
        assert second.cardinality(system, ["i", "j"]) == 55
        assert (second.store_hits, second.store_misses) == (1, 0)

    def test_model_results_identical_with_and_without_store(self, tmp_path):
        baseline = CacheModel(_machine()).analyze(_transpose())
        stored = CacheModel(_machine(), ModelOptions(store_path=str(tmp_path))).analyze(_transpose())
        rerun = CacheModel(_machine(), ModelOptions(store_path=str(tmp_path))).analyze(_transpose())
        reference = [level.to_dict() for level in baseline.level_results]
        assert [level.to_dict() for level in stored.level_results] == reference
        assert [level.to_dict() for level in rerun.level_results] == reference
        assert rerun.timing.store_hits > 0 and rerun.timing.store_misses == 0


# ----------------------------------------------------------------------
# Incremental batch engine
# ----------------------------------------------------------------------
class TestIncrementalBatch:
    SPECS = staticmethod(
        lambda: [
            JobSpec(kernel="gemm", dataset="mini", symbolic_work_budget=200),
            JobSpec(kernel="atax", dataset="mini", symbolic_work_budget=200),
        ]
    )

    def test_warm_rerun_serves_from_store(self, tmp_path):
        cold = BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        assert cold.cached_count == 0 and cold.ok_count == 2
        warm = BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        assert warm.cached_count == 2 and warm.ok_count == 2
        assert [r.result.to_dict() for r in warm] == [r.result.to_dict() for r in cold]
        assert warm.store_stats["hits"] == 2

    def test_partial_matrix_change_recomputes_only_misses(self, tmp_path):
        BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        extended = self.SPECS() + [JobSpec(kernel="mvt", dataset="mini", symbolic_work_budget=200)]
        batch = BatchEngine(1, store_path=str(tmp_path)).run(extended)
        assert batch.cached_count == 2 and batch.ok_count == 3
        assert [record.cached for record in batch] == [True, True, False]

    def test_corrupt_result_entry_recomputed(self, tmp_path):
        store_path = str(tmp_path)
        BatchEngine(1, store_path=store_path).run(self.SPECS())
        store = AnalysisStore(store_path)
        digest = job_digest(self.SPECS()[0])
        path = store._entry_path("result", digest)
        path.write_text(json.dumps({"schema": 1, "version": store.version, "payload": {"bogus": 1}}))
        batch = BatchEngine(1, store_path=store_path).run(self.SPECS())
        assert batch.ok_count == 2
        assert [record.cached for record in batch] == [False, True]

    def test_parallel_matches_sequential_with_store(self, tmp_path):
        specs = [
            JobSpec(kernel=name, dataset="mini", symbolic_work_budget=200)
            for name in ("gemm", "atax", "bicg", "mvt")
        ]
        sequential = BatchEngine(1, store_path=str(tmp_path / "a")).run(specs)
        parallel = BatchEngine(4, store_path=str(tmp_path / "b")).run(specs)

        def signature(batch):
            return [
                (record.kernel, [level.to_dict() for level in record.result.level_results])
                for record in batch
            ]

        assert signature(parallel) == signature(sequential)

    def test_store_less_engine_unchanged(self):
        batch = BatchEngine(1).run(self.SPECS())
        assert batch.store_stats is None and batch.cached_count == 0

    def test_warm_aggregates_count_only_this_runs_compute(self, tmp_path):
        # Cached records replay the cold run's timing counters; the batch
        # aggregates must not attribute that traffic to the warm run.
        spec = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024, 8192), line_size=LINE)
        cold = BatchEngine(1, store_path=str(tmp_path)).run([spec])
        assert cold.cache_misses > 0
        warm = BatchEngine(1, store_path=str(tmp_path)).run([spec])
        assert warm.cached_count == 1
        assert warm.cache_hits == 0 and warm.cache_misses == 0
        assert warm.cardinality_store_hits == 0 and warm.cardinality_store_misses == 0
        # The per-record provenance is preserved, flagged as cached.
        assert warm.records[0].cached
        assert warm.records[0].result.timing.cardinality_cache_misses == cold.cache_misses


# ----------------------------------------------------------------------
# Concurrent writers (the multiprocessing pool contract)
# ----------------------------------------------------------------------
def _store_worker(args):
    root, worker_id = args
    store = AnalysisStore(root)
    # Everyone hammers one shared key and one private key.
    store.put_cardinality("ff" * 32, 123)
    store.put_cardinality(f"{worker_id:064x}", worker_id)
    shared = store.get_cardinality("ff" * 32)
    private = store.get_cardinality(f"{worker_id:064x}")
    return shared, private


class TestConcurrentWriters:
    def test_pool_writers_never_corrupt(self, tmp_path):
        root = str(tmp_path)
        with multiprocessing.Pool(processes=4) as pool:
            outcomes = pool.map(_store_worker, [(root, i) for i in range(16)])
        assert all(shared == 123 for shared, _ in outcomes)
        assert [private for _, private in outcomes] == list(range(16))
        store = AnalysisStore(root)
        assert store.get_cardinality("ff" * 32) == 123
        # 1 shared + 16 private entries, all intact JSON.
        assert store.entry_count() == 17
