"""Persistent analysis store: hashing, backends, recovery, concurrency."""

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro.core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from repro.engine import BatchEngine, JobSpec
from repro.engine.store import (
    AnalysisStore,
    LocalDirBackend,
    PersistentCardinalityCache,
    SQLiteBackend,
    cardinality_digest,
    job_digest,
    make_store_spec,
    parse_store_spec,
    stable_digest,
    validate_store_env,
    validate_store_path,
)
from repro.isl.constraints import ConstraintSystem, ge, le
from repro.scop import ScopBuilder

LINE = 64

#: Both StoreBackend implementations run the whole conformance suite.
BACKENDS = ("dir", "sqlite")


def _machine(levels=(1024, 8192)):
    return MachineModel(
        line_size=LINE,
        levels=tuple(CacheLevelSpec(size, f"L{i + 1}") for i, size in enumerate(levels)),
    )


def _transpose(n=8, m=7):
    b = ScopBuilder("transpose", context={"N": n, "M": m}, element_size=LINE)
    A = b.array("A", (n, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("j")]], writes=[B[b.v("j"), b.v("i")]])
    return b.build()


def _flatten_recency(store):
    """Force every entry onto one identical recency stamp (both backends)."""
    backend = store.backend
    if isinstance(backend, LocalDirBackend):
        for entry in backend.entries():
            os.utime(backend._path(entry.namespace, entry.digest), ns=(10**9, 10**9))
    else:
        with backend._lock:
            backend._connection().execute("UPDATE entries SET recency_ns = ?", (10**9,))


# ----------------------------------------------------------------------
# Stable hashing
# ----------------------------------------------------------------------
class TestStableDigest:
    def test_frozenset_order_insensitive(self):
        a = stable_digest(frozenset([("x", 1), ("y", 2), ("z", 3)]))
        b = stable_digest(frozenset([("z", 3), ("x", 1), ("y", 2)]))
        assert a == b

    def test_distinct_values_distinct_digests(self):
        assert stable_digest(("gemm", 1)) != stable_digest(("gemm", 2))

    def test_counting_problem_digest_matches_canonical_form(self):
        system = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", "i")])
        reordered = ConstraintSystem([le("j", "i"), ge("j", 0), le("i", 9), ge("i", 0)])
        assert cardinality_digest(system, ["i", "j"]) == cardinality_digest(reordered, ["i", "j"])
        assert cardinality_digest(system, ["i", "j"]) != cardinality_digest(system, ["j", "i"])

    def test_job_digest_tracks_spec_identity(self):
        a = JobSpec(kernel="gemm", dataset="mini", levels=(1024,))
        b = JobSpec(kernel="gemm", dataset="mini", levels=(2048,))
        assert job_digest(a) == job_digest(JobSpec(kernel="gemm", dataset="mini", levels=(1024,)))
        assert job_digest(a) != job_digest(b)

    def test_scop_backed_job_digest(self):
        # Scop identities embed QPoly index expressions (and possibly Div
        # symbols); they must digest, and structurally equal scops must agree.
        a = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,))
        b = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,))
        c = JobSpec(kernel="transpose", scop=_transpose(9, 7), levels=(1024,))
        assert job_digest(a) == job_digest(b)
        assert job_digest(a) != job_digest(c)

    def test_digest_stable_across_hash_seeds(self):
        # Frozenset iteration order depends on PYTHONHASHSEED; the digest
        # must not.  Recompute in subprocesses with forced distinct seeds.
        import subprocess
        import sys

        script = (
            "from repro.engine import JobSpec, job_digest;"
            "print(job_digest(JobSpec(kernel='gemm', dataset='mini', levels=(1024, 8192))))"
        )
        digests = set()
        for seed in ("0", "1", "12345"):
            output = subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
                check=True,
                cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
            )
            digests.add(output.stdout.strip())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# Store specs and eager validation
# ----------------------------------------------------------------------
class TestStoreSpecs:
    def test_plain_path_defaults_to_dir(self, tmp_path):
        assert parse_store_spec(str(tmp_path)) == ("dir", str(tmp_path))

    def test_prefix_forces_backend(self, tmp_path):
        assert parse_store_spec(f"dir:{tmp_path}") == ("dir", str(tmp_path))
        name, root = parse_store_spec(f"sqlite:{tmp_path}/db")
        assert (name, root) == ("sqlite", f"{tmp_path}/db")

    def test_sqlite_directory_root_gets_database_name(self, tmp_path):
        name, root = parse_store_spec(str(tmp_path), backend="sqlite")
        assert name == "sqlite" and root == str(tmp_path / "store.sqlite")

    def test_existing_database_file_autodetected(self, tmp_path):
        db = tmp_path / "hits.db"
        sqlite3.connect(db).close()
        assert parse_store_spec(str(db)) == ("sqlite", str(db))

    def test_env_backend_applies_to_unprefixed_paths(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        name, _ = parse_store_spec(str(tmp_path / "fresh"))
        assert name == "sqlite"
        # An explicit prefix still wins over the environment.
        assert parse_store_spec(f"dir:{tmp_path}")[0] == "dir"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            parse_store_spec(str(tmp_path), backend="redis")

    def test_make_store_spec_round_trips(self, tmp_path):
        spec = make_store_spec(tmp_path, "sqlite")
        assert parse_store_spec(spec) == ("sqlite", str(tmp_path / "store.sqlite"))

    def test_validate_rejects_file_as_dir_root(self, tmp_path):
        target = tmp_path / "store"
        target.write_text("not a directory")
        with pytest.raises(ValueError, match="is a file, not a directory"):
            validate_store_path(str(target))

    def test_validate_rejects_dir_as_sqlite_root_file(self, tmp_path):
        (tmp_path / "db").mkdir()
        (tmp_path / "db" / "x").write_text("")
        with pytest.raises(ValueError, match="not a regular file"):
            validate_store_path(f"sqlite:{tmp_path}/db/x/nested")

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores permission bits")
    def test_validate_rejects_unwritable_parent(self, tmp_path):
        parent = tmp_path / "locked"
        parent.mkdir(mode=0o500)
        try:
            with pytest.raises(ValueError, match="not writable"):
                validate_store_path(str(parent / "store"))
        finally:
            parent.chmod(0o700)

    def test_validate_env_flags_bad_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "redis")
        with pytest.raises(ValueError, match="REPRO_STORE_BACKEND"):
            validate_store_env()

    def test_validate_env_flags_bad_path(self, tmp_path, monkeypatch):
        target = tmp_path / "store"
        target.write_text("a file")
        monkeypatch.setenv("REPRO_STORE_PATH", str(target))
        with pytest.raises(ValueError, match="REPRO_STORE_PATH"):
            validate_store_env()

    def test_validate_env_accepts_clean_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "dir")
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "fresh"))
        validate_store_env()


# ----------------------------------------------------------------------
# Backend conformance: the whole lifecycle on every StoreBackend
# ----------------------------------------------------------------------
@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return AnalysisStore(tmp_path, backend=request.param)


class TestBackendConformance:
    def test_round_trip_and_stats(self, store):
        assert store.get_cardinality("ab" * 32) is None
        store.put_cardinality("ab" * 32, 55)
        assert store.get_cardinality("ab" * 32) == 55
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_version_mismatch_invalidates(self, store, tmp_path):
        backend_name = store.backend.name
        writer = AnalysisStore(tmp_path, backend=backend_name, version="v1")
        writer.put_cardinality("cd" * 32, 7)
        reader = AnalysisStore(tmp_path, backend=backend_name, version="v2")
        assert reader.get_cardinality("cd" * 32) is None
        assert reader.stats().invalidations == 1
        # The stale entry was deleted, so the old version cannot resurrect it.
        stale = AnalysisStore(tmp_path, backend=backend_name, version="v1")
        assert stale.get_cardinality("cd" * 32) is None

    def test_corrupt_entry_recovered(self, store):
        store.put_cardinality("ef" * 32, 9)
        # Truncated mid-write (dir: partial file; sqlite: partial payload).
        store.backend.write("cardinality", "ef" * 32, '{"schema": 1, "version')
        assert store.get_cardinality("ef" * 32) is None
        assert store.stats().invalidations == 1
        assert store.backend.read("cardinality", "ef" * 32) is None
        # A rewrite repopulates cleanly.
        store.put_cardinality("ef" * 32, 9)
        assert store.get_cardinality("ef" * 32) == 9

    def test_non_json_garbage_recovered(self, store):
        store.backend.write("result", "aa" * 32, "\x00\xff garbage")
        assert store.get_result("aa" * 32) is None
        assert store.stats().invalidations == 1

    def test_atomic_publish_replaces_whole_entry(self, store):
        store.put_result("bb" * 32, {"round": 1})
        store.put_result("bb" * 32, {"round": 2, "extra": list(range(50))})
        assert store.get_result("bb" * 32) == {"round": 2, "extra": list(range(50))}
        # Overwrites never duplicate the entry.
        assert store.entry_count() == 1

    def test_lru_eviction_under_size_cap(self, store):
        store.max_bytes = 2_000
        for index in range(100):
            store.put_cardinality(f"{index:064d}", index)
        store._evict_lru()
        assert store.size_bytes() <= 2_000
        assert store.stats().evictions > 0
        assert store.entry_count() < 100

    def test_eviction_order_is_stable_for_same_tick_writes(self, store):
        """Entries published in the same recency tick (routine under the mp
        pool) must evict in a deterministic order: recency first, then the
        key tiebreak — never storage enumeration order."""
        store.max_bytes = 10_000
        for index in range(8):
            store.put_cardinality(f"{index:064d}", index)
        survivors = []
        for trial in range(2):
            _flatten_recency(store)
            store.max_bytes = store.size_bytes() - 1  # evict exactly the stalest
            store._evict_lru()
            survivors.append(sorted(entry.digest for entry in store.backend.entries()))
            if trial == 0:
                # Repopulate the evicted entry for the second trial.
                store.max_bytes = 10_000
                for index in range(8):
                    store.put_cardinality(f"{index:064d}", index)
        assert survivors[0] == survivors[1]
        # The key tiebreak means the lexicographically smallest digest went.
        assert f"{0:064d}" not in survivors[0]

    def test_reads_refresh_recency(self, store):
        store.put_cardinality("11" * 32, 1)
        store.put_cardinality("22" * 32, 2)
        _flatten_recency(store)
        assert store.get_cardinality("11" * 32) == 1  # touch bumps recency
        store.max_bytes = store.size_bytes() - 1
        store._evict_lru()
        digests = {entry.digest for entry in store.backend.entries()}
        assert digests == {"11" * 32}

    def test_invalid_size_cap_rejected(self, store, tmp_path):
        with pytest.raises(ValueError):
            AnalysisStore(tmp_path, backend=store.backend.name, max_bytes=0)

    def test_wipe(self, store):
        store.put_cardinality("11" * 32, 1)
        store.put_result("22" * 32, {"kernel": "x"})
        assert store.wipe() == 2
        assert store.entry_count() == 0

    def test_spec_reopens_same_entries(self, store, tmp_path):
        store.put_result("33" * 32, {"kernel": "gemm"})
        spec = make_store_spec(tmp_path, store.backend.name)
        reopened = AnalysisStore(spec)
        assert reopened.backend.name == store.backend.name
        assert reopened.get_result("33" * 32) == {"kernel": "gemm"}


class TestSQLiteBackend:
    def test_wal_mode_enabled(self, tmp_path):
        store = AnalysisStore(tmp_path, backend="sqlite")
        store.put_cardinality("ab" * 32, 1)
        mode = store.backend._connection().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_corrupt_database_recovered_on_write(self, tmp_path):
        db = tmp_path / "store.sqlite"
        db.write_bytes(b"this is not a sqlite database, honest\0" * 20)
        store = AnalysisStore(f"sqlite:{db}")
        assert store.get_cardinality("ab" * 32) is None  # reads degrade to misses
        store.put_cardinality("ab" * 32, 5)  # first write buries the corpse
        assert store.get_cardinality("ab" * 32) == 5


# ----------------------------------------------------------------------
# Persistent cardinality tier
# ----------------------------------------------------------------------
class TestPersistentCardinalityCache:
    def test_disk_tier_shared_across_instances(self, tmp_path):
        system = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", "i")])
        first = PersistentCardinalityCache(AnalysisStore(tmp_path))
        assert first.cardinality(system, ["i", "j"]) == 55
        assert (first.store_hits, first.store_misses) == (0, 1)
        second = PersistentCardinalityCache(AnalysisStore(tmp_path))
        assert second.cardinality(system, ["i", "j"]) == 55
        assert (second.store_hits, second.store_misses) == (1, 0)

    def test_model_results_identical_with_and_without_store(self, tmp_path):
        baseline = CacheModel(_machine()).analyze(_transpose())
        stored = CacheModel(_machine(), ModelOptions(store_path=str(tmp_path))).analyze(_transpose())
        rerun = CacheModel(_machine(), ModelOptions(store_path=str(tmp_path))).analyze(_transpose())
        reference = [level.to_dict() for level in baseline.level_results]
        assert [level.to_dict() for level in stored.level_results] == reference
        assert [level.to_dict() for level in rerun.level_results] == reference
        assert rerun.timing.store_hits > 0 and rerun.timing.store_misses == 0

    def test_sqlite_spec_flows_through_model_options(self, tmp_path):
        spec = make_store_spec(tmp_path, "sqlite")
        baseline = CacheModel(_machine()).analyze(_transpose())
        CacheModel(_machine(), ModelOptions(store_path=spec)).analyze(_transpose())
        rerun = CacheModel(_machine(), ModelOptions(store_path=spec)).analyze(_transpose())
        reference = [level.to_dict() for level in baseline.level_results]
        assert [level.to_dict() for level in rerun.level_results] == reference
        assert rerun.timing.store_hits > 0 and rerun.timing.store_misses == 0
        assert (tmp_path / "store.sqlite").is_file()


# ----------------------------------------------------------------------
# Incremental batch engine
# ----------------------------------------------------------------------
class TestIncrementalBatch:
    SPECS = staticmethod(
        lambda: [
            JobSpec(kernel="gemm", dataset="mini", symbolic_work_budget=200),
            JobSpec(kernel="atax", dataset="mini", symbolic_work_budget=200),
        ]
    )

    def test_warm_rerun_serves_from_store(self, tmp_path):
        cold = BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        assert cold.cached_count == 0 and cold.ok_count == 2
        warm = BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        assert warm.cached_count == 2 and warm.ok_count == 2
        assert [r.result.to_dict() for r in warm] == [r.result.to_dict() for r in cold]
        assert warm.store_stats["hits"] == 2

    def test_partial_matrix_change_recomputes_only_misses(self, tmp_path):
        BatchEngine(1, store_path=str(tmp_path)).run(self.SPECS())
        extended = self.SPECS() + [JobSpec(kernel="mvt", dataset="mini", symbolic_work_budget=200)]
        batch = BatchEngine(1, store_path=str(tmp_path)).run(extended)
        assert batch.cached_count == 2 and batch.ok_count == 3
        assert [record.cached for record in batch] == [True, True, False]

    def test_corrupt_result_entry_recomputed(self, tmp_path):
        store_path = str(tmp_path)
        BatchEngine(1, store_path=store_path).run(self.SPECS())
        store = AnalysisStore(store_path)
        digest = job_digest(self.SPECS()[0])
        path = store._entry_path("result", digest)
        path.write_text(json.dumps({"schema": 1, "version": store.version, "payload": {"bogus": 1}}))
        batch = BatchEngine(1, store_path=store_path).run(self.SPECS())
        assert batch.ok_count == 2
        assert [record.cached for record in batch] == [False, True]

    def test_parallel_matches_sequential_with_store(self, tmp_path):
        specs = [
            JobSpec(kernel=name, dataset="mini", symbolic_work_budget=200)
            for name in ("gemm", "atax", "bicg", "mvt")
        ]
        sequential = BatchEngine(1, store_path=str(tmp_path / "a")).run(specs)
        parallel = BatchEngine(4, store_path=str(tmp_path / "b")).run(specs)

        def signature(batch):
            return [
                (record.kernel, [level.to_dict() for level in record.result.level_results])
                for record in batch
            ]

        assert signature(parallel) == signature(sequential)

    def test_sqlite_store_spec_through_the_pool(self, tmp_path):
        spec = make_store_spec(tmp_path, "sqlite")
        cold = BatchEngine(2, store_path=spec).run(self.SPECS())
        assert cold.cached_count == 0 and cold.ok_count == 2
        warm = BatchEngine(2, store_path=spec).run(self.SPECS())
        assert warm.cached_count == 2
        assert [r.result.to_dict() for r in warm] == [r.result.to_dict() for r in cold]

    def test_store_less_engine_unchanged(self):
        batch = BatchEngine(1).run(self.SPECS())
        assert batch.store_stats is None and batch.cached_count == 0

    def test_warm_aggregates_count_only_this_runs_compute(self, tmp_path):
        # Cached records replay the cold run's timing counters; the batch
        # aggregates must not attribute that traffic to the warm run.
        spec = JobSpec(kernel="transpose", scop=_transpose(), levels=(1024, 8192), line_size=LINE)
        cold = BatchEngine(1, store_path=str(tmp_path)).run([spec])
        assert cold.cache_misses > 0
        warm = BatchEngine(1, store_path=str(tmp_path)).run([spec])
        assert warm.cached_count == 1
        assert warm.cache_hits == 0 and warm.cache_misses == 0
        assert warm.cardinality_store_hits == 0 and warm.cardinality_store_misses == 0
        # The per-record provenance is preserved, flagged as cached.
        assert warm.records[0].cached
        assert warm.records[0].result.timing.cardinality_cache_misses == cold.cache_misses


# ----------------------------------------------------------------------
# Concurrent writers (the multiprocessing pool contract, both backends)
# ----------------------------------------------------------------------
def _store_worker(args):
    spec, worker_id = args
    store = AnalysisStore(spec)
    # Everyone hammers one shared key and one private key.
    store.put_cardinality("ff" * 32, 123)
    store.put_cardinality(f"{worker_id:064x}", worker_id)
    shared = store.get_cardinality("ff" * 32)
    private = store.get_cardinality(f"{worker_id:064x}")
    return shared, private


class TestConcurrentWriters:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pool_writers_never_corrupt(self, tmp_path, backend):
        spec = make_store_spec(tmp_path, backend)
        with multiprocessing.Pool(processes=4) as pool:
            outcomes = pool.map(_store_worker, [(spec, i) for i in range(16)])
        assert all(shared == 123 for shared, _ in outcomes)
        assert [private for _, private in outcomes] == list(range(16))
        store = AnalysisStore(spec)
        assert store.get_cardinality("ff" * 32) == 123
        # 1 shared + 16 private entries, all intact.
        assert store.entry_count() == 17
