"""Tree-PLRU victim selection and stack-distance profiler edge cases.

These tests pin down the reference implementations the vectorized backend is
validated against: the pseudo-LRU decision tree of
:class:`repro.simulator.set_assoc._TreePLRUSet` and the boundary behaviour of
:class:`repro.simulator.lru.StackDistanceProfiler` (empty trace, single line,
capacity zero).
"""

import pytest

from repro.simulator.lru import FullyAssociativeLRU, StackDistanceProfiler
from repro.simulator.set_assoc import ReplacementPolicy, SetAssociativeCache, _TreePLRUSet


# ----------------------------------------------------------------------
# Tree-PLRU victim selection
# ----------------------------------------------------------------------
def test_plru_fills_empty_ways_first():
    cache_set = _TreePLRUSet(4)
    victims = []
    for tag in range(4):
        victims.append(cache_set.victim())
        cache_set.insert(tag)
    # Empty ways are always preferred, in way order, regardless of tree bits.
    assert victims == [0, 1, 2, 3]
    assert cache_set.slots == [0, 1, 2, 3]


def test_plru_victim_points_away_from_recent_touches():
    cache_set = _TreePLRUSet(2)
    cache_set.insert(10)  # way 0, bits now point right
    cache_set.insert(11)  # way 1, bits now point left
    assert cache_set.victim() == 0
    cache_set.touch(0)  # way 0 is hot again -> victim flips to way 1
    assert cache_set.victim() == 1
    cache_set.touch(1)
    assert cache_set.victim() == 0


def test_plru_4way_victim_walks_the_decision_tree():
    cache_set = _TreePLRUSet(4)
    for tag in range(4):
        cache_set.insert(tag)
    # insert() touches the inserted way, so after filling 0..3 the root
    # points at the left half and the left leaf at way 0.
    assert cache_set.victim() == 0
    cache_set.touch(0)
    assert cache_set.victim() == 2
    cache_set.touch(2)
    assert cache_set.victim() == 1
    # Touching way 1 flips the root towards the right subtree, whose leaf
    # bit still points at way 3 (hot from the fill less recently than 2).
    cache_set.touch(1)
    assert cache_set.victim() == 3


def test_plru_non_power_of_two_ways_never_picks_missing_way():
    cache_set = _TreePLRUSet(3)
    for tag in range(3):
        cache_set.insert(tag)
    for step in range(16):
        victim = cache_set.victim()
        assert 0 <= victim < 3
        cache_set.insert(100 + step)


def test_plru_lookup_and_eviction_through_the_cache():
    cache = SetAssociativeCache(2 * 64, 64, 2, policy=ReplacementPolicy.TREE_PLRU)
    assert not cache.access_line(0)
    assert not cache.access_line(1)
    assert cache.access_line(0)  # hit touches way 0
    assert not cache.access_line(2)  # evicts the PLRU victim (way 1 / line 1)
    assert cache.access_line(0)
    assert not cache.access_line(1)  # line 1 was evicted -> conflict miss
    assert cache.stats.compulsory_misses == 3
    assert cache.stats.conflict_misses == 1
    assert cache.stats.hits == 2


def test_plru_reset_clears_sets_and_stats():
    cache = SetAssociativeCache(2 * 64, 64, 2, policy=ReplacementPolicy.TREE_PLRU)
    cache.access_line(0)
    cache.access_line(0)
    cache.reset()
    assert cache.stats.accesses == 0
    assert not cache.access_line(0)  # compulsory again after reset
    assert cache.stats.compulsory_misses == 1


def test_plru_matches_lru_for_two_ways_on_alternating_trace():
    """With 2 ways one tree bit IS the LRU bit: both policies must agree."""
    trace = [0, 1, 0, 2, 0, 1, 2, 0, 1, 0, 2, 1]
    lru = SetAssociativeCache(2 * 64, 64, 2, policy=ReplacementPolicy.LRU)
    plru = SetAssociativeCache(2 * 64, 64, 2, policy=ReplacementPolicy.TREE_PLRU)
    for line in trace:
        assert lru.access_line(line) == plru.access_line(line)
    assert lru.stats.as_dict() == plru.stats.as_dict()


# ----------------------------------------------------------------------
# Stack-distance profiler edge cases
# ----------------------------------------------------------------------
def test_profiler_empty_trace():
    profiler = StackDistanceProfiler()
    assert profiler.profile([]) == []
    assert profiler.histogram([]) == {}
    assert profiler.misses_for_capacity([], 4) == (0, 0)


def test_profiler_single_access():
    profiler = StackDistanceProfiler()
    assert profiler.profile([7]) == [None]
    assert profiler.histogram([7]) == {None: 1}
    assert profiler.misses_for_capacity([7], 1) == (1, 0)


def test_profiler_single_line_repeated():
    trace = [3, 3, 3, 3]
    profiler = StackDistanceProfiler()
    assert profiler.profile(trace) == [None, 1, 1, 1]
    assert profiler.histogram(trace) == {None: 1, 1: 3}
    # Even a one-line cache holds a single line: only the first touch misses.
    assert profiler.misses_for_capacity(trace, 1) == (1, 0)


def test_profiler_capacity_zero_misses_everything():
    trace = [0, 1, 0, 1, 0]
    compulsory, capacity = StackDistanceProfiler().misses_for_capacity(trace, 0)
    assert compulsory == 2
    assert capacity == 3  # every reuse has distance >= 1 > 0


def test_profiler_distances_count_distinct_lines():
    trace = [0, 1, 2, 0, 1, 1]
    assert StackDistanceProfiler().profile(trace) == [None, None, None, 3, 3, 1]


def test_profiler_agrees_with_lru_on_capacity_boundary():
    trace = [0, 1, 2, 0, 3, 1, 0]
    for capacity in (1, 2, 3, 4):
        cache = FullyAssociativeLRU(capacity * 64, 64)
        for line in trace:
            cache.access_line(line)
        compulsory, over = StackDistanceProfiler().misses_for_capacity(trace, capacity)
        assert compulsory == cache.stats.compulsory_misses
        assert over == cache.stats.capacity_misses


def test_fully_associative_rejects_capacity_zero():
    with pytest.raises(ValueError):
        FullyAssociativeLRU(0, 64)
