"""Property-based fuzzing of the verifier over random builder programs.

Three properties, over randomly shaped affine loop nests:

* ``check_scop`` never raises — lint findings are data, not crashes;
* a program built with every access provably in bounds yields no
  error-severity findings (the checks have no false errors on clean code);
* injecting one out-of-range access into an otherwise clean program yields
  exactly one OOB finding, at the injected access.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scop.builder import ScopBuilder
from repro.verify import check_scop

#: Small shapes keep each polyhedral feasibility query fast; the *structure*
#: (depth, statement count, offsets) is what varies.
extents = st.integers(min_value=2, max_value=12)
depths = st.integers(min_value=1, max_value=3)
offsets = st.integers(min_value=0, max_value=3)


@st.composite
def programs(draw):
    """A random perfect loop nest with in-bounds strided/offset accesses.

    Every array is sized ``extent + max_offset`` so a read at ``var +
    offset`` stays in bounds by construction; statements read one array and
    accumulate into another (so no dataflow findings fire either).
    """
    depth = draw(depths)
    extent = draw(extents)
    statements = draw(st.integers(min_value=1, max_value=3))
    offs = [draw(offsets) for _ in range(statements)]

    b = ScopBuilder("fuzz")
    arrays = []
    for index, off in enumerate(offs):
        shape = [extent + max(offs)] * depth
        src = b.array(f"src{index}", shape)
        acc = b.array(f"acc{index}", shape)
        arrays.append((src, acc, off))

    def body(level, loop_vars):
        if level == depth:
            for src, acc, off in arrays:
                read_idx = tuple(v + off for v in loop_vars)
                write_idx = tuple(loop_vars)
                b.stmt(reads=[src[read_idx], acc[write_idx]], writes=[acc[write_idx]])
            return
        with b.loop(f"i{level}", 0, extent) as var:
            body(level + 1, loop_vars + [var])

    body(0, [])
    return b.build(), depth, extent


@settings(max_examples=25, deadline=None)
@given(programs())
def test_clean_programs_have_no_errors(data):
    scop, _, _ = data
    findings = check_scop(scop)  # property one: never raises
    assert [d for d in findings if d.severity == "error"] == [], [
        d.render() for d in findings
    ]


@settings(max_examples=25, deadline=None)
@given(programs(), st.integers(min_value=1, max_value=4))
def test_injected_overrun_fires_exactly_one_oob(data, overshoot):
    scop, depth, extent = data
    # Re-build the program with one extra statement whose read walks
    # ``overshoot`` cells past the end of a fresh array in dimension 0.
    b = ScopBuilder("fuzz-oob")
    victim = b.array("victim", [extent] * depth)
    sink = b.array("sink", [extent] * depth)

    def body(level, loop_vars):
        if level == depth:
            idx = tuple(loop_vars)
            bad = tuple(
                v + (overshoot if dim == 0 else 0) for dim, v in enumerate(loop_vars)
            )
            b.stmt(reads=[victim[bad], sink[idx]], writes=[sink[idx]])
            return
        with b.loop(f"i{level}", 0, extent) as var:
            body(level + 1, loop_vars + [var])

    body(0, [])
    findings = check_scop(b.build())
    oob = [d for d in findings if d.code == "OOB"]
    assert len(oob) == 1
    assert oob[0].severity == "error" and oob[0].array == "victim"
    assert oob[0].access_position == 0  # the injected read, nothing else
    assert [d for d in findings if d.severity == "error"] == oob
