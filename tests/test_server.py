"""Analysis service: protocol, coalescing, admission, HTTP round trips."""

import asyncio
import json
import threading
import types
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api import Session
from repro.engine.store import AnalysisStore, job_digest, make_store_spec
from repro.server import AnalysisService, BackgroundServer, RequestError, build_spec
from repro.server import service as service_module
from repro.server.client import ServerError

GEMM_KNL = (Path(__file__).resolve().parent.parent / "examples" / "kernels" / "gemm.knl").read_text()


def _fake_record(spec, payload=None):
    """A JobRecord look-alike; lets service tests skip real engine work."""
    result = types.SimpleNamespace(to_dict=lambda: payload or {"kernel": spec.kernel, "fake": True})
    return types.SimpleNamespace(status="ok", error="", kernel=spec.kernel, result=result)


class _CountingWorker:
    """Replacement for the engine worker: counts calls, optionally gated."""

    def __init__(self, gated: bool = False):
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()
        if not gated:
            self.release.set()

    def __call__(self, payload):
        index, spec, store_path = payload
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30.0)
        return _fake_record(spec)


# ----------------------------------------------------------------------
# Request protocol
# ----------------------------------------------------------------------
class TestBuildSpec:
    def test_kernel_request_matches_session_spec(self):
        spec, kernel = build_spec({"kernel": "gemm", "budget": 2000})
        assert kernel == "gemm"
        assert spec == Session().budget(2000).job_spec("gemm", "mini")

    def test_machine_preset_and_levels_are_exclusive(self):
        with pytest.raises(RequestError, match="mutually exclusive"):
            build_spec({"kernel": "gemm", "machine": "paper-xeon", "levels": [1024]})

    def test_explicit_levels_and_line_size(self):
        spec, _ = build_spec({"kernel": "gemm", "levels": [4096, 65536], "line_size": 32})
        assert spec.levels == (4096, 65536) and spec.line_size == 32

    def test_kernel_and_source_are_exclusive(self):
        with pytest.raises(RequestError, match="exactly one"):
            build_spec({"kernel": "gemm", "source": GEMM_KNL})
        with pytest.raises(RequestError, match="exactly one"):
            build_spec({})

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request field"):
            build_spec({"kernel": "gemm", "kernell": "typo"})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(RequestError, match="unknown kernel"):
            build_spec({"kernel": "nope"})

    def test_default_budget_applies_when_absent(self):
        spec, _ = build_spec({"kernel": "gemm"}, default_budget=1234)
        assert spec.symbolic_work_budget == 1234
        spec, _ = build_spec({"kernel": "gemm", "budget": 99}, default_budget=1234)
        assert spec.symbolic_work_budget == 99

    def test_source_parses_and_ships_scop(self):
        spec, kernel = build_spec({"source": GEMM_KNL, "budget": 2000})
        assert kernel == "gemm" and spec.scop is not None
        # Same text, same structural digest — independent of submission count.
        again, _ = build_spec({"source": GEMM_KNL, "budget": 2000})
        assert job_digest(spec) == job_digest(again)

    def test_source_syntax_error_is_located(self):
        with pytest.raises(RequestError, match="<request>:"):
            build_spec({"source": "kernel broken\nnot a declaration\n"})

    def test_capacity_sweep_flows_into_spec(self):
        spec, _ = build_spec({"kernel": "gemm", "capacities": [64, 1024, 64]})
        assert spec.curve_capacities == (64, 1024)


class TestBuildExplorePlan:
    def test_plan_expands_one_job_per_tile_and_line_size(self):
        from repro.server.protocol import build_explore_plan

        plan = build_explore_plan(
            {
                "kernel": "gemm",
                "levels": [32 * 1024],
                "tiles": "1,4",
                "capacities": [1024, 32 * 1024],
                "line_sizes": [32, 64],
            },
            default_budget=2000,
        )
        assert [(tile, line) for tile, line, _ in plan.jobs] == [(1, 32), (4, 32), (1, 64), (4, 64)]
        for tile, line_size, job in plan.jobs:
            # Each expanded job is an ordinary /v1/analyze payload: one level
            # at the largest capacity, the whole axis as curve breakpoints.
            assert job["tile"] == tile and job["line_size"] == line_size
            assert job["levels"] == [32 * 1024]
            assert job["capacities"] == [1024, 32 * 1024]
            assert job["budget"] == 2000

    def test_axes_default_from_the_machine(self):
        from repro.server.protocol import build_explore_plan

        plan = build_explore_plan({"kernel": "gemm", "levels": [4096, 65536]})
        assert plan.space.capacities == (4096, 65536)
        assert plan.space.tiles == (1,)
        assert len(plan.jobs) == 1

    def test_malformed_requests_rejected(self):
        from repro.server.protocol import build_explore_plan

        with pytest.raises(RequestError, match="unknown explore field"):
            build_explore_plan({"kernel": "gemm", "line_size": 64})
        with pytest.raises(RequestError, match="exactly one"):
            build_explore_plan({"tiles": [1]})
        with pytest.raises(RequestError, match="mutually exclusive"):
            build_explore_plan({"kernel": "gemm", "machine": "paper-xeon", "levels": [1024]})
        with pytest.raises(RequestError, match="tiles"):
            build_explore_plan({"kernel": "gemm", "tiles": [0]})


# ----------------------------------------------------------------------
# Coalescing and admission (service level, deterministic)
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_requests_share_one_job(self, monkeypatch):
        worker = _CountingWorker()
        monkeypatch.setattr(service_module, "_execute_job", worker)
        service = AnalysisService(workers=0)
        job = {"kernel": "gemm", "budget": 2000}

        async def drive():
            return await asyncio.gather(service.analyze(job), service.analyze(dict(job)))

        (s1, b1), (s2, b2) = asyncio.run(drive())
        assert (s1, s2) == (200, 200)
        assert worker.calls == 1
        assert service.stats()["coalesced"] == 1
        assert service.stats()["engine_jobs"] == 1
        # Byte-identical result payloads from the single shared computation.
        assert json.dumps(b1["result"], sort_keys=True) == json.dumps(b2["result"], sort_keys=True)
        flags = sorted((b["meta"]["coalesced"]) for b in (b1, b2))
        assert flags == [False, True]

    def test_distinct_requests_do_not_coalesce(self, monkeypatch):
        worker = _CountingWorker()
        monkeypatch.setattr(service_module, "_execute_job", worker)
        service = AnalysisService(workers=0)

        async def drive():
            return await asyncio.gather(
                service.analyze({"kernel": "gemm", "budget": 2000}),
                service.analyze({"kernel": "atax", "budget": 2000}),
            )

        results = asyncio.run(drive())
        assert all(status == 200 for status, _ in results)
        assert worker.calls == 2
        assert service.stats()["coalesced"] == 0

    def test_leader_failure_propagates_to_waiters(self, monkeypatch):
        def failing_worker(payload):
            _, spec, _ = payload
            return types.SimpleNamespace(status="error", error="boom", kernel=spec.kernel, result=None)

        monkeypatch.setattr(service_module, "_execute_job", failing_worker)
        service = AnalysisService(workers=0)
        job = {"kernel": "gemm", "budget": 2000}

        async def drive():
            return await asyncio.gather(service.analyze(job), service.analyze(dict(job)))

        (s1, b1), (s2, b2) = asyncio.run(drive())
        assert (s1, s2) == (500, 500)
        assert "boom" in b1["error"] and "boom" in b2["error"]
        # The failure is not cached: a later request retries.
        assert service.stats()["errors"] == 1


class TestAdmission:
    def test_budget_ceiling_sheds(self):
        service = AnalysisService(workers=0, max_budget=1000)

        async def drive(job):
            return await service.analyze(job)

        status, body = asyncio.run(drive({"kernel": "gemm", "budget": 2000}))
        assert status == 429 and body["shed"] == "budget"
        # Unlimited (budget 0 -> None) is above any ceiling.
        status, body = asyncio.run(drive({"kernel": "gemm", "budget": 0}))
        assert status == 429 and body["shed"] == "budget"
        assert service.stats()["shed_budget"] == 2

    def test_capacity_cap_sheds_when_full(self, monkeypatch):
        worker = _CountingWorker(gated=True)
        monkeypatch.setattr(service_module, "_execute_job", worker)
        service = AnalysisService(workers=0, max_inflight=1)

        async def drive():
            leader = asyncio.ensure_future(service.analyze({"kernel": "gemm", "budget": 2000}))
            await asyncio.to_thread(worker.started.wait, 10.0)
            shed_status, shed_body = await service.analyze({"kernel": "atax", "budget": 2000})
            worker.release.set()
            leader_status, _ = await leader
            return shed_status, shed_body, leader_status

        shed_status, shed_body, leader_status = asyncio.run(drive())
        assert (shed_status, shed_body["shed"]) == (429, "capacity")
        assert leader_status == 200
        assert service.stats()["shed_capacity"] == 1

    def test_constructor_validates_configuration(self, tmp_path):
        with pytest.raises(ValueError):
            AnalysisService(workers=-1)
        with pytest.raises(ValueError):
            AnalysisService(max_inflight=0)
        target = tmp_path / "file"
        target.write_text("not a store")
        with pytest.raises(ValueError, match="is a file"):
            AnalysisService(store_path=str(target))


# ----------------------------------------------------------------------
# HTTP round trips (live server on a background thread)
# ----------------------------------------------------------------------
class TestHttpServer:
    def test_health_stats_and_errors(self):
        with BackgroundServer(workers=0, default_budget=2000) as server:
            client = server.client()
            assert client.wait_ready()["status"] == "ok"
            stats = client.stats()
            assert stats["requests"] == 0 and stats["store"] is None
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("PUT", "/healthz")[0] == 405
            assert client.request("POST", "/v1/analyze", {"kernel": "gemm", "bogus": 1})[0] == 400

    def test_analyze_round_trip_matches_offline_session(self, tmp_path):
        spec_string = make_store_spec(tmp_path, "dir")
        job = {"kernel": "gemm", "budget": 2000}
        with BackgroundServer(workers=0, store_path=spec_string) as server:
            client = server.client()
            envelope = client.analyze(job)
            assert envelope["meta"]["cached"] is False
            # A rerun is served from the shared store.
            rerun = client.analyze(dict(job))
            assert rerun["meta"]["cached"] is True
            assert json.dumps(rerun["result"], sort_keys=True) == json.dumps(
                envelope["result"], sort_keys=True
            )
        # The offline path on the same store must read the same entry and
        # produce the byte-identical payload.
        offline_session = Session().budget(2000).store(spec_string)
        offline = offline_session.analyze("gemm", "mini")
        assert envelope["meta"]["digest"] == job_digest(offline_session.job_spec("gemm", "mini"))
        assert json.dumps(offline.to_dict(), sort_keys=True) == json.dumps(
            envelope["result"], sort_keys=True
        )

    def test_inline_source_round_trip(self, tmp_path):
        spec_string = make_store_spec(tmp_path, "sqlite")
        with BackgroundServer(workers=0, store_path=spec_string) as server:
            client = server.client()
            envelope = client.analyze({"source": GEMM_KNL, "budget": 2000})
            assert envelope["meta"]["kernel"] == "gemm"
            assert envelope["result"]["levels"]
            # Same source again: structural digest hits the sqlite store.
            again = client.analyze({"source": GEMM_KNL, "budget": 2000})
            assert again["meta"]["cached"] is True
            assert again["meta"]["digest"] == envelope["meta"]["digest"]
        store = AnalysisStore(spec_string)
        assert store.get_result(envelope["meta"]["digest"]) is not None

    def test_concurrent_duplicates_coalesce_over_http(self, monkeypatch):
        worker = _CountingWorker(gated=True)
        monkeypatch.setattr(service_module, "_execute_job", worker)
        job = {"kernel": "gemm", "budget": 2000}
        with BackgroundServer(workers=0) as server:
            client = server.client()
            with ThreadPoolExecutor(max_workers=2) as pool:
                leader = pool.submit(client.analyze, job)
                assert worker.started.wait(timeout=10.0)
                waiter = pool.submit(client.analyze, dict(job))
                # The duplicate must be coalesced (visible in /stats) before
                # anything completes — both requests ride one engine job.
                for _ in range(200):
                    if server.service.stats()["coalesced"] >= 1:
                        break
                    threading.Event().wait(0.01)
                assert server.service.stats()["coalesced"] == 1
                worker.release.set()
                first, second = leader.result(timeout=30), waiter.result(timeout=30)
            assert worker.calls == 1
            assert json.dumps(first["result"], sort_keys=True) == json.dumps(
                second["result"], sort_keys=True
            )
            stats = client.stats()
            assert stats["engine_jobs"] == 1 and stats["coalesced"] == 1

    def test_budget_shed_over_http(self):
        with BackgroundServer(workers=0, max_budget=500) as server:
            client = server.client()
            with pytest.raises(ServerError) as excinfo:
                client.analyze({"kernel": "gemm", "budget": 2000})
            assert excinfo.value.status == 429
            assert excinfo.value.body["shed"] == "budget"

    def test_explore_round_trip_matches_offline_session(self, tmp_path):
        spec_string = make_store_spec(tmp_path, "dir")
        request = {
            "kernel": "gemm",
            "levels": [32 * 1024],
            "tiles": [1, 4],
            "capacities": [1024, 32 * 1024],
            "budget": 2000,
        }
        with BackgroundServer(workers=0, store_path=spec_string) as server:
            envelope = server.client().explore(request)
        meta, table = envelope["meta"], envelope["explore"]
        assert meta["kernel"] == "gemm" and meta["analyses"] == 2
        assert table["grid_size"] == len(table["configs"]) == 4
        assert [c["pareto"] for c in table["configs"]].count(True) == len(table["pareto"])
        # The offline explorer over the same axes produces the identical
        # table digest — shared assembly, shared store entries.
        offline = (
            Session()
            .machine((32 * 1024,))
            .budget(2000)
            .store(spec_string)
            .explore("gemm", tiles=[1, 4], capacities=[1024, 32 * 1024])
        )
        assert offline.table_digest() == meta["table_digest"]

    def test_explore_request_validation_over_http(self):
        with BackgroundServer(workers=0) as server:
            client = server.client()
            assert client.request("GET", "/v1/explore")[0] == 405
            status, body = client.request("POST", "/v1/explore", {"kernel": "gemm", "bogus": 1})
            assert status == 400 and "unknown explore field" in body["error"]
            status, body = client.request("POST", "/v1/explore", {"tiles": [1]})
            assert status == 400 and "exactly one" in body["error"]

    def test_batch_endpoint_streams_and_dedups(self, monkeypatch):
        worker = _CountingWorker()
        monkeypatch.setattr(service_module, "_execute_job", worker)
        jobs = [
            {"kernel": "gemm", "budget": 2000},
            {"kernel": "atax", "budget": 2000},
            {"kernel": "gemm", "budget": 2000},
        ]
        with BackgroundServer(workers=0) as server:
            records = list(server.client().batch_iter(jobs))
        assert sorted(record["index"] for record in records) == [0, 1, 2]
        assert all(record["status"] == 200 for record in records)
        # The duplicate gemm coalesced into its twin: two engine jobs, not three.
        assert worker.calls == 2


OOB_KNL = (
    Path(__file__).resolve().parent.parent / "examples" / "kernels" / "broken" / "oob.knl"
).read_text()


class TestLintEndpoint:
    def test_registered_kernel_lints_clean(self):
        service = AnalysisService(workers=0)
        status, body = asyncio.run(service.lint({"kernel": "gemm", "cost": False}))
        assert status == 200
        assert body["schema_version"] >= 1
        assert body["kernel"] == "gemm" and body["dataset"] == "mini"
        assert body["summary"]["error"] == 0
        assert service.stats()["lints"] == 1

    def test_inline_source_carries_request_locations(self):
        service = AnalysisService(workers=0)
        status, body = asyncio.run(service.lint({"source": OOB_KNL, "cost": False}))
        assert status == 200
        oob = [d for d in body["diagnostics"] if d["code"] == "OOB"]
        assert len(oob) == 1 and oob[0]["severity"] == "error"
        assert oob[0]["location"] == {"file": "<request>", "line": 18, "col": 12}
        # Findings are data, not failures: errors still answer 200.
        assert body["summary"]["error"] == 1

    def test_cost_prediction_rides_in_the_payload(self):
        service = AnalysisService(workers=0)
        status, body = asyncio.run(service.lint({"kernel": "gemm", "budget": 300}))
        assert status == 200
        assert body["cost"]["outcome"] == "budget" and body["cost"]["trips"] is True
        assert any(d["code"] == "COST" for d in body["diagnostics"])

    def test_request_validation(self):
        service = AnalysisService(workers=0)
        cases = [
            ({}, "exactly one"),
            ({"kernel": "gemm", "source": "x"}, "exactly one"),
            ({"kernel": "gemm", "tile": 2}, "unknown lint field"),
            ({"kernel": "gem"}, "did you mean 'gemm'"),
            ({"kernel": "gemm", "budget": "lots"}, "budget"),
            ({"kernel": "gemm", "cost": 1}, "cost"),
            ({"kernel": "gemm", "machine": "paper-xeon", "levels": [1024]}, "mutually exclusive"),
        ]
        for payload, fragment in cases:
            status, body = asyncio.run(service.lint(payload))
            assert status == 400, payload
            assert fragment in body["error"], (payload, body)

    def test_lint_never_touches_the_engine(self, monkeypatch):
        worker = _CountingWorker()
        monkeypatch.setattr(service_module, "_execute_job", worker)
        service = AnalysisService(workers=0)
        status, _ = asyncio.run(service.lint({"kernel": "gemm", "cost": False}))
        assert status == 200
        assert worker.calls == 0
        assert service.stats()["engine_jobs"] == 0

    def test_http_round_trip(self):
        with BackgroundServer(workers=0) as server:
            client = server.client()
            status, body = client.request("POST", "/v1/lint", {"source": OOB_KNL, "cost": False})
            assert status == 200
            assert body["summary"]["error"] == 1
            # Method/body errors are rejected at the HTTP layer, before the
            # service sees (and counts) a lint request.
            assert client.request("GET", "/v1/lint")[0] == 405
            assert client.request("POST", "/v1/lint")[0] == 400
            assert client.stats()["lints"] == 1
