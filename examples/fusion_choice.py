#!/usr/bin/env python
"""Evaluating a loop-fusion choice with the analytical cache model.

Two implementations of the same computation (``tmp = A + B; out = tmp * C``):

* **unfused** — two separate loops with an intermediate array written and
  re-read, and
* **fused** — a single loop that consumes each ``tmp`` value immediately.

The model quantifies the locality benefit of fusion (the intermediate array
no longer has to survive in the cache between the two loops) without running
either variant.

Run with:  python examples/fusion_choice.py
"""

from repro.api import Session
from repro.core import CacheLevelSpec, MachineModel
from repro.scop import ScopBuilder


def build_unfused(n: int) -> "Scop":
    b = ScopBuilder("unfused", context={"N": n}, element_size=64)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    C = b.array("C", (n,))
    tmp = b.array("tmp", (n,))
    out = b.array("out", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")], B[b.v("i")]], writes=[tmp[b.v("i")]])
    with b.loop("i2", 0, n):
        b.stmt(reads=[tmp[b.v("i2")], C[b.v("i2")]], writes=[out[b.v("i2")]])
    return b.build()


def build_fused(n: int) -> "Scop":
    b = ScopBuilder("fused", context={"N": n}, element_size=64)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    C = b.array("C", (n,))
    tmp = b.array("tmp", (n,))
    out = b.array("out", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")], B[b.v("i")]], writes=[tmp[b.v("i")]])
        b.stmt(reads=[tmp[b.v("i")], C[b.v("i")]], writes=[out[b.v("i")]])
    return b.build()


def main() -> None:
    n = 64
    # A small L1 that cannot hold the intermediate array between the loops.
    machine = MachineModel(line_size=64, levels=(CacheLevelSpec(8 * 64, "L1"),))
    session = Session().machine(machine)

    unfused = session.analyze(build_unfused(n))
    fused = session.analyze(build_fused(n))

    print(f"Element-wise pipeline over {n} elements, 8-line fully associative L1:\n")
    for name, result in (("unfused", unfused), ("fused", fused)):
        print(f"  {name:<8}: {result.misses(0):>4} misses "
              f"({result.compulsory(0)} compulsory + {result.capacity(0)} capacity), "
              f"{result.hits(0)} hits")

    saved = unfused.misses(0) - fused.misses(0)
    print(f"\nFusion avoids {saved} cache misses "
          f"({saved / unfused.misses(0):.0%} of the unfused misses) by keeping the "
          f"intermediate value in cache between the producer and the consumer.")
    assert fused.misses(0) <= unfused.misses(0)


if __name__ == "__main__":
    main()
