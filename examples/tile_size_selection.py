#!/usr/bin/env python
"""Tile-size selection with the analytical cache model.

The paper motivates HayStack as a tool for memory-hierarchy aware software
development: "selecting the optimal tile size ... is far less intuitive".
This example considers a kernel that sweeps repeatedly over an array that is
larger than the cache.  Blocking (tiling) the sweep keeps a tile resident
across the repeated passes — but only if the tile fits the cache.  The model
ranks the candidate tile sizes without executing the program.

The candidate variants run as one batch through the ``repro.api`` session
façade; ``run_iter`` streams each verdict the moment its analysis finishes
instead of holding all output until the batch completes (add ``.workers(n)``
to the session to also overlap the analyses).

Run with:  python examples/tile_size_selection.py
(The tiled variants take a few minutes each with the pure-Python backend;
set REPRO_EXAMPLE_FAST=1 for a seconds-scale variant used by CI.)
"""

import os

from repro.api import Session
from repro.scop import ScopBuilder
from repro.scop.schedule import tile_scop

CACHE_LINES = 8


def build_repeated_sweep(n: int, passes: int) -> "Scop":
    """s += A[i] repeated ``passes`` times over an array of n lines."""
    b = ScopBuilder("sweep", context={"N": n, "T": passes}, element_size=64)
    A = b.array("A", (n,))
    s = b.array("s", (1,))
    with b.loop("t", 0, passes):
        with b.loop("i", 0, n):
            b.stmt(reads=[A[b.v("i")], s[0]], writes=[s[0]])
    return b.build()


def main() -> None:
    fast = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
    n, passes = (16, 2) if fast else (32, 4)
    tiles = (4, 8, 16) if fast else (4, 8, 16, 32)
    # Fast mode budgets the symbolic pipeline: the tiled variants trip it and
    # degrade to the exact trace fallback, so CI sees the same ranking in
    # seconds instead of minutes.
    budget = 2_000 if fast else None

    baseline = build_repeated_sweep(n, passes)
    variants = [("untiled", baseline)]
    for tile in tiles:
        # Tiling both loops interchanges the pass loop into the tile, so a
        # tile that fits the cache is reused across all passes.
        variants.append((f"tile {tile}", tile_scop(baseline, tile)))

    session = Session().machine((CACHE_LINES * 64,)).budget(budget)
    print(f"Repeated sweep over {n} cache lines ({passes} passes), "
          f"{CACHE_LINES}-line fully associative L1:\n")
    print(f"{'variant':<10} {'L1 misses':>10} {'hits':>8} {'miss ratio':>11}")
    best = None
    labels = [name for name, _ in variants]
    # error_policy="raise" surfaces a failed variant as a JobError instead of
    # an error record whose result would be None.
    request = session.scops(*[scop for _, scop in variants])
    for record in request.run_iter(error_policy="raise"):
        name = labels[record.index]
        result = record.result
        print(f"{name:<10} {result.misses(0):>10} {result.hits(0):>8} {result.miss_ratio(0):>10.1%}")
        if best is None or result.misses(0) < best[1]:
            best = (name, result.misses(0))

    print(f"\nBest variant according to the model: {best[0]}")
    print("Tiles that fit the cache are reused across the passes; the largest")
    print("tile no longer fits and behaves like the untiled sweep.")


if __name__ == "__main__":
    main()
