#!/usr/bin/env python
"""Tile-size selection with the design-space explorer.

The paper motivates HayStack as a tool for memory-hierarchy aware software
development: "selecting the optimal tile size ... is far less intuitive".
This example considers a kernel that sweeps repeatedly over an array that is
larger than the cache.  Blocking (tiling) the sweep keeps a tile resident
across the repeated passes — but only if the tile fits the cache.  The model
ranks the candidate tile sizes without executing the program.

The whole candidate grid runs through ``Session.explore`` — one call that
tiles the kernel per candidate, analyzes each variant once, and returns the
configurations ranked by predicted misses (``docs/EXPLORE.md`` documents the
output anatomy).  Tile 1 is the untiled baseline.

Run with:  python examples/tile_size_selection.py
(The tiled variants take a few minutes each with the pure-Python backend;
set REPRO_EXAMPLE_FAST=1 for a seconds-scale variant used by CI.)
"""

import os

from repro.api import Session
from repro.scop import ScopBuilder

CACHE_LINES = 8


def build_repeated_sweep(n: int, passes: int) -> "Scop":
    """s += A[i] repeated ``passes`` times over an array of n lines."""
    b = ScopBuilder("sweep", context={"N": n, "T": passes}, element_size=64)
    A = b.array("A", (n,))
    s = b.array("s", (1,))
    with b.loop("t", 0, passes):
        with b.loop("i", 0, n):
            b.stmt(reads=[A[b.v("i")], s[0]], writes=[s[0]])
    return b.build()


def main() -> None:
    fast = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
    n, passes = (16, 2) if fast else (32, 4)
    tiles = (1, 4, 8, 16) if fast else (1, 4, 8, 16, 32)
    # Fast mode budgets the symbolic pipeline: the tiled variants trip it and
    # degrade to the exact trace fallback, so CI sees the same ranking in
    # seconds instead of minutes.
    budget = 2_000 if fast else None

    scop = build_repeated_sweep(n, passes)
    session = Session().machine((CACHE_LINES * 64,)).budget(budget)
    result = session.explore(scop, tiles=tiles, capacities=[CACHE_LINES * 64])

    print(f"Repeated sweep over {n} cache lines ({passes} passes), "
          f"{CACHE_LINES}-line fully associative L1:\n")
    print(f"{'variant':<10} {'L1 misses':>10} {'hits':>8} {'miss ratio':>11}")
    for config in sorted(result.configs, key=lambda c: c.tile):
        name = "untiled" if config.tile == 1 else f"tile {config.tile}"
        hits = config.accesses - config.misses
        print(f"{name:<10} {config.misses:>10} {hits:>8} {config.miss_ratio:>10.1%}")

    best = result.best()
    name = "untiled" if best.tile == 1 else f"tile {best.tile}"
    print(f"\nBest variant according to the model: {name}")
    print(f"({result.analyses} analyses for {len(result.configs)} configurations, "
          f"{result.elapsed_seconds:.1f}s)")
    print("Tiles that fit the cache are reused across the passes; the largest")
    print("tile no longer fits and behaves like the untiled sweep.")


if __name__ == "__main__":
    main()
