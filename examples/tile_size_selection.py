#!/usr/bin/env python
"""Tile-size selection with the analytical cache model.

The paper motivates HayStack as a tool for memory-hierarchy aware software
development: "selecting the optimal tile size ... is far less intuitive".
This example considers a kernel that sweeps repeatedly over an array that is
larger than the cache.  Blocking (tiling) the sweep keeps a tile resident
across the repeated passes — but only if the tile fits the cache.  The model
ranks the candidate tile sizes without executing the program.

Run with:  python examples/tile_size_selection.py
(The tiled variants take a few minutes each with the pure-Python backend.)
"""

from repro.core import CacheLevelSpec, CacheModel, MachineModel
from repro.scop import ScopBuilder
from repro.scop.schedule import tile_scop

CACHE_LINES = 8


def build_repeated_sweep(n: int = 32, passes: int = 4) -> "Scop":
    """s += A[i] repeated ``passes`` times over an array of n lines."""
    b = ScopBuilder("sweep", context={"N": n, "T": passes}, element_size=64)
    A = b.array("A", (n,))
    s = b.array("s", (1,))
    with b.loop("t", 0, passes):
        with b.loop("i", 0, n):
            b.stmt(reads=[A[b.v("i")], s[0]], writes=[s[0]])
    return b.build()


def main() -> None:
    n, passes = 32, 4
    machine = MachineModel(line_size=64, levels=(CacheLevelSpec(CACHE_LINES * 64, "L1"),))
    model = CacheModel(machine)

    baseline = build_repeated_sweep(n, passes)
    variants = [("untiled", baseline)]
    for tile in (4, 8, 16, 32):
        # Tiling both loops interchanges the pass loop into the tile, so a
        # tile that fits the cache is reused across all passes.
        variants.append((f"tile {tile}", tile_scop(baseline, tile)))

    print(f"Repeated sweep over {n} cache lines ({passes} passes), "
          f"{CACHE_LINES}-line fully associative L1:\n")
    print(f"{'variant':<10} {'L1 misses':>10} {'hits':>8} {'miss ratio':>11}")
    best = None
    for name, scop in variants:
        result = model.analyze(scop)
        print(f"{name:<10} {result.misses(0):>10} {result.hits(0):>8} {result.miss_ratio(0):>10.1%}")
        if best is None or result.misses(0) < best[1]:
            best = (name, result.misses(0))

    print(f"\nBest variant according to the model: {best[0]}")
    print("Tiles that fit the cache are reused across the passes; the largest")
    print("tile no longer fits and behaves like the untiled sweep.")


if __name__ == "__main__":
    main()
