#!/usr/bin/env python
"""Quickstart: model the cache behaviour of a small GEMM-like kernel.

Builds a static control program with the ScopBuilder DSL, runs the
analytical cache model for a two-level hierarchy, and compares the predicted
miss counts against the trace-driven reference simulator.

Run with:  python examples/quickstart.py
"""

from repro.api import Session
from repro.core import CacheLevelSpec, MachineModel
from repro.scop import ScopBuilder
from repro.simulator import CacheLevelConfig, DineroSimulator


def build_matvec(n: int = 24) -> "Scop":
    """y = A @ x  followed by  s += y[i] (two simple loop nests)."""
    b = ScopBuilder("matvec", context={"N": n}, element_size=64)
    A = b.array("A", (n, n))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, n):
            b.stmt(reads=[y[b.v("i")], A[b.v("i"), b.v("j")], x[b.v("j")]], writes=[y[b.v("i")]])
    with b.loop("i2", 0, n):
        b.stmt(reads=[y[b.v("i2")]])
    return b.build()


def main() -> None:
    scop = build_matvec()
    machine = MachineModel(
        line_size=64,
        levels=(CacheLevelSpec(16 * 64, "L1"), CacheLevelSpec(128 * 64, "L2")),
    )

    print(f"Analysing {scop.name}: {scop.total_accesses()} memory accesses, "
          f"{len(scop.statements)} statements, {len(scop.arrays)} arrays")

    result = Session().machine(machine).analyze(scop)
    print("\nAnalytical model (HayStack):")
    for level in result.level_results:
        print(f"  {level.name}: {level.compulsory} compulsory + {level.capacity} capacity "
              f"= {level.misses} misses, {level.hits} hits ({level.miss_ratio:.1%} miss ratio)")
    print(f"  model time: {result.timing.total_seconds:.2f}s, pieces counted: {result.piece_count}")

    simulator = DineroSimulator([
        CacheLevelConfig(cache_size=16 * 64, line_size=64),
        CacheLevelConfig(cache_size=128 * 64, line_size=64),
    ])
    reference = simulator.run(scop)
    print("\nTrace-driven reference (fully associative LRU):")
    for index, stats in enumerate(reference.levels):
        print(f"  L{index + 1}: {stats.misses} misses, {stats.hits} hits")

    for index in range(2):
        assert result.misses(index) == reference.levels[index].misses, "model must match the simulator"
    print("\nThe analytical model matches the simulation exactly.")


if __name__ == "__main__":
    main()
