"""Figure 14: speedup due to equalization, rasterization, partial enumeration.

The floor-elimination rewrites and the hybrid partial-enumeration counting
only matter for kernels whose stack-distance polynomials are non-affine;
the benchmark uses the line-granularity triangular workload (the smallest
kernel that produces such polynomials) and compares the capacity-miss
counting time with each optimisation disabled.
"""

import pytest

from helpers import L1_SIZE, model_session, nonaffine_workloads, timed
from repro.core import ModelOptions
from repro.reporting import format_table

CONFIGS = [
    ("all optimisations", ModelOptions()),
    ("no equalization", ModelOptions(equalization=False)),
    ("no rasterization", ModelOptions(rasterization=False)),
    ("no equalization/rasterization", ModelOptions(equalization=False, rasterization=False)),
]


def _experiment():
    rows = []
    reference_misses = {}
    for name, builder in nonaffine_workloads():
        scop = builder()
        for label, options in CONFIGS:
            options.fallback_to_simulation = False
            result, seconds = timed(model_session((L1_SIZE,), options).analyze, scop)
            key = (name, label)
            rows.append((name, label, round(seconds, 2), result.piece_count, result.misses(0)))
            reference_misses.setdefault(name, result.misses(0))
            assert result.misses(0) == reference_misses[name], "optimisations must not change the result"
    return rows


def test_fig14_optimization_ablation(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 14: floor elimination / partial enumeration ablation")
    print(format_table(["kernel", "configuration", "time [s]", "#pieces", "L1 misses"], rows))
    # All configurations agree on the miss counts (asserted inside), and the
    # fully optimised configuration never counts more pieces than the
    # unoptimised one.
    by_kernel = {}
    for name, label, seconds, pieces, misses in rows:
        by_kernel.setdefault(name, {})[label] = pieces
    for name, configs in by_kernel.items():
        assert configs["all optimisations"] <= configs["no equalization/rasterization"]
