"""Figure 13: cost of modelling one, two or three cache hierarchy levels.

Stack distances are computed once and only the capacity-miss counting is
repeated per level, so additional levels add only minor overhead.
"""

import pytest

from helpers import L1_SIZE, L2_SIZE, L3_SIZE, copy, model_session, stencil_1d, sweep, timed, trisum
from repro.reporting import format_table

WORKLOADS = [("copy", copy), ("stencil-1d", stencil_1d), ("trisum", trisum)]
LEVEL_SETS = [(L1_SIZE,), (L1_SIZE, L2_SIZE), (L1_SIZE, L2_SIZE, L3_SIZE)]


def _experiment():
    rows = []
    for name, builder in sweep(WORKLOADS):
        scop = builder()
        timings = []
        for levels in LEVEL_SETS:
            result, seconds = timed(model_session(levels).analyze, scop)
            timings.append(round(seconds, 2))
        rows.append((name, *timings))
    return rows


def test_fig13_hierarchy_levels(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 13: model execution time for 1/2/3 cache levels")
    print(format_table(["kernel", "L1 only [s]", "L1+L2 [s]", "L1+L2+L3 [s]"], rows))
    for row in rows:
        one_level, three_levels = row[1], row[3]
        # Adding levels must cost far less than re-running the whole model
        # per level (the paper reports only minor increases).
        assert three_levels < 3.0 * max(one_level, 0.05)
