"""Figure 9: model-predicted misses vs. "measured" misses (L1 and L2).

The hardware measurements of the paper are replaced by the deterministic
hardware surrogate (set-associative tree-PLRU caches, see DESIGN.md).  The
paper reports geometric-mean errors of 0.6% (L1) and 0.2% (L2) relative to
the total number of accesses; the reproduction asserts that the error of the
fully associative model against the set-associative surrogate stays within a
few percent for the scaled suite.
"""

import pytest

from helpers import L1_SIZE, L2_SIZE, run_models, suite
from repro.hardware import HardwareLevelConfig, HardwareSurrogate
from repro.reporting import format_table, geometric_mean


def _accuracy_experiment():
    surrogate = HardwareSurrogate(
        levels=(
            HardwareLevelConfig(L1_SIZE, associativity=4, name="L1"),
            HardwareLevelConfig(L2_SIZE, associativity=8, name="L2"),
        ),
        padded_layout=True,
    )
    rows = []
    kernels = suite()
    scops = [builder() for builder in kernels.values()]
    predictions = run_models(scops, (L1_SIZE, L2_SIZE))
    for name, scop, predicted in zip(kernels, scops, predictions):
        measured = surrogate.measure(scop)
        errors = []
        for level in range(2):
            error = abs(predicted.misses(level) - measured.misses(level)) / max(predicted.accesses, 1)
            errors.append(error)
        rows.append((name, predicted.accesses, predicted.misses(0), measured.misses(0), errors[0], predicted.misses(1), measured.misses(1), errors[1]))
    return rows


def test_fig09_model_accuracy_vs_measurement(benchmark):
    rows = benchmark.pedantic(_accuracy_experiment, rounds=1, iterations=1)
    print("\nFigure 9: predicted vs. measured cache misses")
    print(
        format_table(
            ["kernel", "accesses", "L1 model", "L1 measured", "L1 err", "L2 model", "L2 measured", "L2 err"],
            rows,
        )
    )
    l1_errors = [row[4] for row in rows]
    l2_errors = [row[7] for row in rows]
    l1_geo = geometric_mean([e for e in l1_errors if e > 0]) if any(l1_errors) else 0.0
    l2_geo = geometric_mean([e for e in l2_errors if e > 0]) if any(l2_errors) else 0.0
    print(f"geometric mean error: L1 {l1_geo * 100:.2f}%  L2 {l2_geo * 100:.2f}% (paper: 0.6% / 0.2%)")
    # The fully associative model must stay close to the set-associative
    # "measurement"; the paper's threshold for problem kernels is ~10%.
    assert max(l1_errors) < 0.25
    assert max(l2_errors) < 0.25
