"""Figure 10: Dinero IV simulation vs. measured misses (fully assoc. / 8-way).

The simulator surrogate plays Dinero IV's role; the hardware surrogate plays
the PAPI measurements.  The paper's observation is that fully associative
simulation agrees with the model and that simulating the real associativity
only matters for a single kernel (doitgen); the reproduction checks that the
fully associative and the set-associative simulations stay close to the
measurement on the scaled suite.
"""

import pytest

from helpers import L1_SIZE, L2_SIZE, run_simulator, suite
from repro.hardware import HardwareLevelConfig, HardwareSurrogate
from repro.reporting import format_table


def _experiment():
    surrogate = HardwareSurrogate(
        levels=(
            HardwareLevelConfig(L1_SIZE, associativity=4, name="L1"),
            HardwareLevelConfig(L2_SIZE, associativity=8, name="L2"),
        ),
        padded_layout=True,
    )
    rows = []
    for name, builder in suite().items():
        scop = builder()
        fully = run_simulator(scop, (L1_SIZE, L2_SIZE), associativity=None)
        assoc = run_simulator(scop, (L1_SIZE, L2_SIZE), associativity=4)
        measured = surrogate.measure(scop)
        err_full = abs(fully.misses(0) - measured.misses(0)) / max(fully.accesses, 1)
        err_assoc = abs(assoc.misses(0) - measured.misses(0)) / max(assoc.accesses, 1)
        rows.append((name, fully.accesses, fully.misses(0), assoc.misses(0), measured.misses(0), err_full, err_assoc))
    return rows


def test_fig10_simulation_accuracy(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 10: simulated vs. measured L1 misses")
    print(
        format_table(
            ["kernel", "accesses", "fully assoc", "4-way", "measured", "err(full)", "err(4-way)"],
            rows,
        )
    )
    # Simulating the real associativity tracks the measurement at least as
    # well as the fully associative idealisation (small PLRU-vs-LRU noise is
    # tolerated), and the idealisation error stays small.
    for row in rows:
        assert row[6] <= row[5] + 0.02
    assert max(row[5] for row in rows) < 0.25
