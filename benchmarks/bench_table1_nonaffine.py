"""Table 1: non-affine stack-distance polynomials by number of affine dims.

The paper reports, for the kernels with non-affine polynomials, how many of
those polynomials keep zero, one or two dimensions that can still be counted
symbolically (partial enumeration).  The reproduction collects the same
statistic from the capacity counter on the line-granularity workloads.
"""

import pytest

from helpers import L1_SIZE, model_session, nonaffine_workloads
from repro.core import ModelOptions
from repro.reporting import format_table


def _experiment():
    rows = []
    for name, builder in nonaffine_workloads():
        result = model_session((L1_SIZE,), ModelOptions(fallback_to_simulation=False)).analyze(builder())
        histogram = {0: 0, 1: 0, 2: 0}
        for dims in result.nonaffine_affine_dims:
            histogram[min(dims, 2)] = histogram.get(min(dims, 2), 0) + 1
        rows.append((name, result.nonaffine_pieces, histogram[0], histogram[1], histogram[2]))
    return rows


def test_table1_nonaffine_polynomials(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nTable 1: non-affine polynomials by number of affine dimensions")
    print(format_table(["kernel", "#non-affine", "0d-affine", "1d-affine", "2d-affine"], rows))
    # The triangular kernel has non-affine polynomials and most of them keep
    # at least one affine dimension (the property that makes partial
    # enumeration effective, as in the paper's Table 1).
    tri = next(row for row in rows if row[0] == "nested-tri")
    assert tri[1] > 0
    assert tri[3] + tri[4] >= tri[2]
