"""Figure 12: model execution time for growing problem sizes.

The paper's headline property: the analytical model's execution time is
(mostly) independent of the problem size, because only the number of pieces
— not the number of memory accesses — matters.  The benchmark analyses the
same kernels at three problem sizes and checks that the execution time grows
far slower than the access count.
"""

import pytest

from helpers import model_session, stencil_1d, sweep, timed, trisum
from repro.reporting import format_table

#: (kernel, [sizes]) — each step roughly quadruples the access count.
SWEEPS = [
    ("stencil-1d", stencil_1d, [16, 32, 64]),
    ("trisum", trisum, [8, 12, 16]),
]


def _experiment():
    rows = []
    for name, builder, sizes in SWEEPS:
        for size in sweep(sizes):
            scop = builder(size)
            result, seconds = timed(model_session().analyze, scop)
            rows.append((name, size, scop.total_accesses(), round(seconds, 2), result.piece_count))
    return rows


def test_fig12_problem_size_independence(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 12: model execution time for increasing problem sizes")
    print(format_table(["kernel", "size", "#accesses", "model time [s]", "#pieces"], rows))
    for name, builder, sizes in SWEEPS:
        series = [row for row in rows if row[0] == name]
        access_growth = series[-1][2] / series[0][2]
        time_growth = series[-1][3] / max(series[0][3], 1e-6)
        print(f"{name}: accesses grew {access_growth:.1f}x, model time grew {time_growth:.1f}x")
        # Execution time must grow much slower than the access count.
        assert time_growth < access_growth
