"""Figure 1: scaling of the analytical model vs. trace-driven simulation.

The paper shows that Dinero IV's simulation time grows linearly with the
number of memory accesses while HayStack's execution time is (mostly)
problem-size independent.  This benchmark sweeps the problem size of the scaled
stencil and triangular kernels and reports both tools execution times;
the assertion checks the *shape*: the simulation time ratio between the
largest and smallest size must exceed the model's ratio by a wide margin.
"""

import pytest

from helpers import model_session, run_simulator, stencil_1d, sweep, timed, trisum


STENCIL_SIZES = [24, 48, 96]
TRISUM_SIZES = [8, 12, 16]


def _scaling_experiment():
    rows = []
    for size in sweep(STENCIL_SIZES):
        scop = stencil_1d(size)
        model_result, model_time = timed(model_session().analyze, scop)
        sim_result = run_simulator(scop)
        rows.append(("stencil-1d", scop.total_accesses(), model_time, sim_result.elapsed_seconds))
    for size in sweep(TRISUM_SIZES):
        scop = trisum(size)
        model_result, model_time = timed(model_session().analyze, scop)
        sim_result = run_simulator(scop)
        rows.append(("trisum", scop.total_accesses(), model_time, sim_result.elapsed_seconds))
    return rows


def test_fig01_model_vs_simulation_scaling(benchmark):
    rows = benchmark.pedantic(_scaling_experiment, rounds=1, iterations=1)
    print("\nFigure 1: execution time versus number of memory accesses")
    print(f"{'kernel':<10} {'#accesses':>10} {'model [s]':>12} {'simulation [s]':>15}")
    for kernel, accesses, model_time, sim_time in rows:
        print(f"{kernel:<10} {accesses:>10} {model_time:>12.3f} {sim_time:>15.4f}")

    gemm_rows = [r for r in rows if r[0] == "stencil-1d"]
    accesses_ratio = gemm_rows[-1][1] / gemm_rows[0][1]
    sim_ratio = gemm_rows[-1][3] / max(gemm_rows[0][3], 1e-9)
    model_ratio = gemm_rows[-1][2] / max(gemm_rows[0][2], 1e-9)
    print(f"stencil-1d access ratio {accesses_ratio:.1f}x, simulation time ratio {sim_ratio:.1f}x, model time ratio {model_ratio:.1f}x")
    # Simulation cost must track the access count much more closely than the
    # model cost does (the paper's Figure 1 shows flat model scaling).
    assert sim_ratio > model_ratio
