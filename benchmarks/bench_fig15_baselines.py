"""Figure 15: speedup of HayStack over PolyCache and Dinero IV.

The PolyCache surrogate analyses every cache set separately and the Dinero
surrogate enumerates the full memory trace; both are compared against the
analytical model on the scaled suite.  In the paper HayStack (backed by
isl/barvinok) is 21x / 370x faster; the pure-Python model is much slower in
absolute terms, so the assertion only checks the cost *structure*: baseline
cost grows with the trace length while the model cost does not, and the
speedup of the model over Dinero grows with the problem size.
"""

import pytest

from helpers import L1_SIZE, LINE, model_session, run_simulator, smoke_mode, stencil_1d, timed, trisum
from repro.baselines import PolyCacheSurrogate
from repro.reporting import format_table


def _workloads():
    if smoke_mode():
        return [("stencil-1d", stencil_1d, 16, 48), ("trisum", trisum, 8, 12)]
    return [("stencil-1d", stencil_1d, 16, 128), ("trisum", trisum, 8, 20)]


def _experiment():
    rows = []
    for name, builder, small, large in _workloads():
        for size in (small, large):
            scop = builder(size)
            _, model_time = timed(model_session((L1_SIZE,)).analyze, scop)
            dinero = run_simulator(scop, (L1_SIZE,))
            polycache = PolyCacheSurrogate(L1_SIZE, LINE, associativity=4).analyze(scop)
            rows.append(
                (
                    name,
                    size,
                    scop.total_accesses(),
                    round(model_time, 2),
                    round(dinero.elapsed_seconds, 4),
                    round(polycache.elapsed_seconds, 4),
                )
            )
    return rows


def test_fig15_baseline_comparison(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 15: HayStack vs. PolyCache vs. Dinero IV (execution time)")
    print(
        format_table(
            ["kernel", "size", "#accesses", "model [s]", "dinero [s]", "polycache [s]"],
            rows,
        )
    )
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row[0], []).append(row)
    for name, series in by_kernel.items():
        small, large = series[0], series[-1]
        access_growth = large[2] / small[2]
        dinero_growth = large[4] / max(small[4], 1e-9)
        model_growth = large[3] / max(small[3], 1e-9)
        print(f"{name}: accesses x{access_growth:.1f}, dinero time x{dinero_growth:.1f}, model time x{model_growth:.1f}")
        # The baselines' cost tracks the trace length; the model's does not.
        assert model_growth < dinero_growth or model_growth < access_growth / 2
