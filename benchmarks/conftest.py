"""Benchmark-harness pytest configuration: the ``--smoke`` fast mode.

``pytest benchmarks/ --smoke`` runs every figure with truncated sweeps and
smaller workloads (see ``helpers.smoke_mode``), which keeps a full benchmark
pass within a CI budget.  The flag is exported through the ``REPRO_SMOKE``
environment variable so the worker processes of the batch engine and the
helpers module observe it regardless of import order.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run the benchmarks in fast mode (truncated sweeps, small workloads)",
    )


def pytest_configure(config):
    if config.getoption("--smoke"):
        os.environ["REPRO_SMOKE"] = "1"
