"""Figure 16: model execution times for tiled kernels.

Rectangular tiling (tile size 16 in the paper, 4 here to match the scaled
problem sizes) doubles the loop-nest depth and makes both the iteration
domains and the reuse windows more complex, which increases the model
execution time while the predicted misses stay exact.
"""

import pytest

from helpers import L1_SIZE, LINE, model_session, reference_misses, smoke_mode, stencil_1d, timed, transpose
from repro.reporting import format_table
from repro.scop.schedule import tile_scop

WORKLOADS = [("transpose", lambda n: transpose(n, n - 1), 10), ("stencil-1d", stencil_1d, 24)]
SMOKE_WORKLOADS = [("transpose", lambda n: transpose(n, n - 1), 8), ("stencil-1d", stencil_1d, 16)]
TILE_SIZE = 4


def _experiment():
    rows = []
    for name, builder, size in (SMOKE_WORKLOADS if smoke_mode() else WORKLOADS):
        original = builder(size)
        tiled = tile_scop(original, TILE_SIZE)
        session = model_session((L1_SIZE,))
        original_result, original_time = timed(session.analyze, original)
        tiled_result, tiled_time = timed(session.analyze, tiled)
        compulsory, capacity = reference_misses(tiled, L1_SIZE // LINE)
        assert tiled_result.compulsory(0) == compulsory
        assert tiled_result.capacity(0) == capacity
        rows.append(
            (
                name,
                round(original_time, 2),
                round(tiled_time, 2),
                original_result.misses(0),
                tiled_result.misses(0),
            )
        )
    return rows


def test_fig16_tiled_kernels(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nFigure 16: model execution time for tiled kernels (tile size 4)")
    print(format_table(["kernel", "untiled [s]", "tiled [s]", "untiled misses", "tiled misses"], rows))
    # Tiling increases the analysis cost (more complex schedules) and the
    # predictions remain exact (asserted against the reference inside).
    for row in rows:
        assert row[2] > 0
