"""Shared workload definitions and runners for the benchmark harness.

Every figure/table of the paper's evaluation has a corresponding
``bench_*.py`` module; they all draw their workloads from here.

Scaling note (see DESIGN.md §4 and EXPERIMENTS.md): the paper runs PolyBench
LARGE on native hardware with isl/barvinok doing the symbolic counting.  The
pure-Python polyhedral substrate of this reproduction is orders of magnitude
slower than isl, so the benchmark suite uses a *scaled benchmark suite*:
representative kernels with small problem sizes, and element size equal to
the cache line size for the kernels used in timing sweeps (which keeps the
stack-distance polynomials div-free).  Dedicated line-granularity workloads
(8 elements per line) exercise equalization/rasterization/partial enumeration
for the experiments that study exactly those code paths (Figure 14, Table 1).

Simulator backends: every trace-driven helper (``run_simulator``,
``reference_misses``) runs on the backend resolved by ``REPRO_BACKEND`` /
NumPy availability, exactly like the model's trace fallback.  The regression
harness additionally carries a ``trace`` workload (see
``repro.reporting.bench.SUITES``): a fig10-style simulator run timed under
*both* backends, whose numpy-vs-python speedup ratio lands in
``BENCH_<suite>.json`` and is gated by ``bench --compare`` (suite floor
10x).  Figure modules therefore never need to time the backends themselves.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Session
from repro.core import CacheLevelSpec, MachineModel, ModelOptions, ModelResult
from repro.engine.batch import default_worker_count
from repro.scop import Scop, ScopBuilder
from repro.simulator import CacheLevelConfig, DineroSimulator, StackDistanceProfiler, TraceGenerator

LINE = 64

#: Cache sizes used by the scaled experiments (in lines: 16 and 128).
L1_SIZE = 16 * LINE
L2_SIZE = 128 * LINE
L3_SIZE = 1024 * LINE

#: Results memoised across benchmark modules, keyed on ``JobSpec.key()``.
_RESULTS: Dict[Tuple, ModelResult] = {}


def smoke_mode() -> bool:
    """Fast-mode flag set by ``pytest --smoke`` (via the REPRO_SMOKE env var)."""
    return os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def default_jobs() -> int:
    """Worker count for benchmark fan-outs (REPRO_BENCH_JOBS overrides)."""
    env = os.environ.get("REPRO_BENCH_JOBS", "")
    if env:
        return max(1, int(env))
    return default_worker_count()


def sweep(values: Sequence, keep: int = 2) -> List:
    """Problem-size sweep, truncated to ``keep`` points in smoke mode."""
    values = list(values)
    return values[:keep] if smoke_mode() else values


# ----------------------------------------------------------------------
# Scaled kernel suite (element size == line size -> div-free model runs)
# ----------------------------------------------------------------------
def gemm(ni=6, nj=6, nk=6, element_size=LINE) -> Scop:
    b = ScopBuilder("gemm", context={"NI": ni, "NJ": nj, "NK": nk}, element_size=element_size)
    C = b.array("C", (ni, nj))
    A = b.array("A", (ni, nk))
    B = b.array("B", (nk, nj))
    with b.loop("i", 0, ni):
        with b.loop("j", 0, nj):
            b.stmt(reads=[C[b.v("i"), b.v("j")]], writes=[C[b.v("i"), b.v("j")]])
        with b.loop("k", 0, nk):
            with b.loop("j2", 0, nj):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j2")], C[b.v("i"), b.v("j2")]],
                    writes=[C[b.v("i"), b.v("j2")]],
                )
    return b.build()


def jacobi_1d(n=32, tsteps=2, element_size=LINE) -> Scop:
    b = ScopBuilder("jacobi-1d", context={"N": n, "TSTEPS": tsteps}, element_size=element_size)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("t", 0, tsteps):
        with b.loop("i", 1, n - 1):
            b.stmt(reads=[A[b.v("i") - 1], A[b.v("i")], A[b.v("i") + 1]], writes=[B[b.v("i")]])
        with b.loop("i2", 1, n - 1):
            b.stmt(reads=[B[b.v("i2") - 1], B[b.v("i2")], B[b.v("i2") + 1]], writes=[A[b.v("i2")]])
    return b.build()


def mvt(n=10, element_size=LINE) -> Scop:
    b = ScopBuilder("mvt", context={"N": n}, element_size=element_size)
    A = b.array("A", (n, n))
    x1 = b.array("x1", (n,))
    x2 = b.array("x2", (n,))
    y1 = b.array("y1", (n,))
    y2 = b.array("y2", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, n):
            b.stmt(reads=[x1[b.v("i")], A[b.v("i"), b.v("j")], y1[b.v("j")]], writes=[x1[b.v("i")]])
    with b.loop("i2", 0, n):
        with b.loop("j2", 0, n):
            b.stmt(reads=[x2[b.v("i2")], A[b.v("j2"), b.v("i2")], y2[b.v("j2")]], writes=[x2[b.v("i2")]])
    return b.build()


def atax(m=8, n=10, element_size=LINE) -> Scop:
    b = ScopBuilder("atax", context={"M": m, "N": n}, element_size=element_size)
    A = b.array("A", (m, n))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    tmp = b.array("tmp", (m,))
    with b.loop("i0", 0, n):
        b.stmt(writes=[y[b.v("i0")]])
    with b.loop("i", 0, m):
        b.stmt(writes=[tmp[b.v("i")]])
        with b.loop("j", 0, n):
            b.stmt(reads=[A[b.v("i"), b.v("j")], x[b.v("j")], tmp[b.v("i")]], writes=[tmp[b.v("i")]])
        with b.loop("j2", 0, n):
            b.stmt(reads=[y[b.v("j2")], A[b.v("i"), b.v("j2")], tmp[b.v("i")]], writes=[y[b.v("j2")]])
    return b.build()


def trisolv(n=12, element_size=LINE) -> Scop:
    b = ScopBuilder("trisolv", context={"N": n}, element_size=element_size)
    L = b.array("L", (n, n))
    x = b.array("x", (n,))
    bvec = b.array("b", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[bvec[b.v("i")]], writes=[x[b.v("i")]])
        with b.loop("j", 0, b.v("i")):
            b.stmt(reads=[x[b.v("i")], L[b.v("i"), b.v("j")], x[b.v("j")]], writes=[x[b.v("i")]])
        b.stmt(reads=[x[b.v("i")], L[b.v("i"), b.v("i")]], writes=[x[b.v("i")]])
    return b.build()


def cholesky_like(n=8, element_size=LINE) -> Scop:
    """Triangular update kernel with cholesky's loop structure."""
    b = ScopBuilder("cholesky", context={"N": n}, element_size=element_size)
    A = b.array("A", (n, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i")):
            with b.loop("k", 0, b.v("j")):
                b.stmt(
                    reads=[A[b.v("i"), b.v("j")], A[b.v("i"), b.v("k")], A[b.v("j"), b.v("k")]],
                    writes=[A[b.v("i"), b.v("j")]],
                )
            b.stmt(reads=[A[b.v("i"), b.v("j")], A[b.v("j"), b.v("j")]], writes=[A[b.v("i"), b.v("j")]])
        b.stmt(reads=[A[b.v("i"), b.v("i")]], writes=[A[b.v("i"), b.v("i")]])
    return b.build()



def copy(n=48, element_size=LINE) -> Scop:
    """Streaming copy kernel B[i] = A[i]."""
    b = ScopBuilder("copy", context={"N": n}, element_size=element_size)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")]], writes=[B[b.v("i")]])
    return b.build()


def transpose(n=10, m=9, element_size=LINE) -> Scop:
    """Out-of-place matrix transpose B[j][i] = A[i][j]."""
    b = ScopBuilder("transpose", context={"N": n, "M": m}, element_size=element_size)
    A = b.array("A", (n, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("j")]], writes=[B[b.v("j"), b.v("i")]])
    return b.build()


def stencil_1d(n=32, element_size=LINE) -> Scop:
    """Single jacobi-1d sweep B[i] = f(A[i-1], A[i], A[i+1])."""
    b = ScopBuilder("stencil-1d", context={"N": n}, element_size=element_size)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 1, n - 1):
        b.stmt(reads=[A[b.v("i") - 1], A[b.v("i")], A[b.v("i") + 1]], writes=[B[b.v("i")]])
    return b.build()


def trisum(n=12, element_size=LINE) -> Scop:
    """Triangular reduction s[i] += A[i][j] for j <= i (trisolv-like reuse)."""
    b = ScopBuilder("trisum", context={"N": n}, element_size=element_size)
    A = b.array("A", (n, n))
    s = b.array("s", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[A[b.v("i"), b.v("j")], s[b.v("i")]], writes=[s[b.v("i")]])
    return b.build()



def nested_triangular(n=8, element_size=LINE) -> Scop:
    """Three-deep triangular nest (cholesky-style reuse).

    The accumulator line is revisited across the outermost loop with a reuse
    window whose size grows quadratically, which yields genuinely non-affine
    stack-distance polynomials and exercises partial enumeration.
    """
    b = ScopBuilder("nested-tri", context={"N": n}, element_size=element_size)
    A = b.array("A", (n, n))
    acc = b.array("acc", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            with b.loop("k", 0, b.v("j"), upper_inclusive=True):
                b.stmt(reads=[A[b.v("j"), b.v("k")], acc[b.v("i")]], writes=[acc[b.v("i")]])
    return b.build()


def copy_line_grained(n=16) -> Scop:
    """8 elements per cache line; exercises the floor-elimination paths."""
    b = ScopBuilder("copy-lines", context={"N": n}, element_size=8)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")]], writes=[B[b.v("i")]])
    return b.build()


def triangular_line_grained(n=8) -> Scop:
    """Triangular kernel at cache-line granularity: non-affine distances."""
    b = ScopBuilder("tri-lines", context={"N": n}, element_size=8)
    A = b.array("A", (n, n))
    s = b.array("s", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[A[b.v("i"), b.v("j")], s[b.v("i")]], writes=[s[b.v("i")]])
    return b.build()


#: The scaled benchmark suite used by the per-kernel figures.  These kernels
#: complete in seconds with the pure-Python symbolic backend; the full
#: PolyBench kernels remain available via ``repro.scop.polybench`` for longer
#: offline runs (see EXPERIMENTS.md).
SUITE = {
    "copy": copy,
    "transpose": transpose,
    "stencil-1d": stencil_1d,
    "trisum": trisum,
}


def suite() -> Dict:
    """The benchmark suite, truncated to two kernels in smoke mode."""
    if smoke_mode():
        return {name: SUITE[name] for name in ("transpose", "trisum")}
    return dict(SUITE)


def nonaffine_workloads() -> List[Tuple[str, "object"]]:
    """Line-granularity workloads with non-affine stack distances.

    Shared by the Figure 14 ablation and the Table 1 statistic so both
    exercise identical kernels; smoke mode shrinks the problem sizes.
    """
    if smoke_mode():
        return [("nested-tri", lambda: nested_triangular(5)), ("copy-lines", lambda: copy_line_grained(8))]
    return [("nested-tri", nested_triangular), ("copy-lines", copy_line_grained)]


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def machine(levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE), line_size: int = LINE) -> MachineModel:
    return MachineModel(
        line_size=line_size,
        levels=tuple(CacheLevelSpec(size, f"L{i+1}") for i, size in enumerate(levels)),
    )


def analysis_session(
    levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE),
    options: Optional[ModelOptions] = None,
    *,
    jobs: Optional[int] = None,
) -> Session:
    """A :class:`repro.api.Session` configured for the scaled experiments.

    Figure modules run every analysis through this façade; single runs use
    ``analysis_session(...).analyze(scop)``, sweeps open a request with
    ``.scops(...)``.  Exporting REPRO_STORE_PATH shares the persistent
    analysis store across pytest sessions.
    """
    session = Session().machine(machine(levels)).workers(jobs if jobs is not None else default_jobs())
    if options is not None:
        session.configure(options)
    store_path = os.environ.get("REPRO_STORE_PATH", "").strip() or None
    if store_path:
        session.store(store_path)
    return session


def run_models(
    scops: Sequence[Scop],
    levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE),
    options: Optional[ModelOptions] = None,
    *,
    jobs: Optional[int] = None,
) -> List[ModelResult]:
    """Analyse several kernels through the session façade (parallel workers).

    Results are memoised across benchmark modules on the job identity, so a
    kernel analysed by one figure is free for every later figure.  Ordering
    is deterministic: results come back in argument order regardless of the
    worker count.
    """
    session = analysis_session(levels, options, jobs=jobs)
    specs = session.scops(*scops).specs()
    missing = [spec for spec in specs if spec.key() not in _RESULTS]
    if missing:
        batch = session.run(missing)
        for spec, record in zip(missing, batch.records):
            if not record.ok or record.result is None:
                raise RuntimeError(f"benchmark job {spec.describe()} failed: {record.error}")
            _RESULTS[spec.key()] = record.result
    return [_RESULTS[spec.key()] for spec in specs]


def run_model(scop: Scop, levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE), options: Optional[ModelOptions] = None) -> ModelResult:
    """Run the analytical model (memoised across benchmark modules)."""
    return run_models([scop], levels, options, jobs=1)[0]


def model_session(
    levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE), options: Optional[ModelOptions] = None
) -> Session:
    """Session for *timed* single runs: inline worker and no store, so the
    measured wall time is the model's compute, not a disk lookup."""
    return analysis_session(levels, options, jobs=1).no_store()


def run_simulator(scop: Scop, levels: Tuple[int, ...] = (L1_SIZE, L2_SIZE), associativity=None):
    configs = [CacheLevelConfig(cache_size=size, line_size=LINE, associativity=associativity) for size in levels]
    return DineroSimulator(configs).run(scop)


def reference_misses(scop: Scop, cache_lines: int, line_size: int = LINE) -> Tuple[int, int]:
    """Exact (compulsory, capacity) misses from the stack-distance profiler.

    Uses the vectorized profiler when the resolved backend is ``numpy``;
    both implementations return identical counts.
    """
    from repro.simulator import resolve_backend

    if resolve_backend("auto") == "numpy":
        from repro.simulator.vectorized import misses_for_capacity, trace_arrays

        arrays = trace_arrays(scop, line_size=line_size, padded=True)
        return misses_for_capacity(arrays.line_indices(), cache_lines)
    trace = list(TraceGenerator(scop, line_size=line_size).line_trace())
    return StackDistanceProfiler().misses_for_capacity(trace, cache_lines)


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start
