"""Figure 11: execution-time breakdown of the model and number of pieces.

The paper splits the model execution time into the stack-distance
computation and the capacity-miss counting and correlates the cost with the
number of separately counted pieces.
"""

import pytest

from helpers import run_models, suite
from repro.reporting import format_table


def _experiment():
    rows = []
    kernels = suite()
    results = run_models([builder() for builder in kernels.values()])
    for name, result in zip(kernels, results):
        rows.append(
            (
                name,
                round(result.timing.stack_distance_seconds, 2),
                round(result.timing.capacity_seconds, 2),
                round(result.timing.total_seconds, 2),
                result.piece_count,
                result.nonaffine_pieces,
            )
        )
    return rows


def test_fig11_component_breakdown(benchmark):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = sorted(rows, key=lambda r: r[3])
    print("\nFigure 11: model execution time breakdown (sorted by total time)")
    print(
        format_table(
            ["kernel", "stack dist [s]", "capacity [s]", "total [s]", "#pieces", "#non-affine"],
            rows,
        )
    )
    # Kernels with reuse produce counted pieces and the total time accounts
    # for both phases.
    assert any(row[4] > 0 for row in rows)
    for row in rows:
        assert row[3] >= row[1]
