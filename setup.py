"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables the legacy
editable-install path (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) for minimal environments that lack the
``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
