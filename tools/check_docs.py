#!/usr/bin/env python3
"""Hard-fail consistency checks for the markdown documentation.

Three guarantees, enforced in CI (the ``docs`` job) and in the tier-1 suite
(``tests/test_docs.py``):

* every **relative link** in the checked markdown files points at a file or
  directory that exists in the repository;
* every **code pointer** of the form ``path/to/file.py:Symbol`` (in
  backticks) resolves — the file exists and ``Symbol`` is a top-level
  class, function, or assignment in it, or a ``Class.method`` /
  ``Class.attribute`` one level down;
* every **fenced ```knl code block** parses with the real kernel frontend
  (``repro.frontend``) and instantiates at every dataset it declares, so the
  language reference cannot drift from the implementation.

The knl check imports ``repro.frontend`` from the in-repo ``src/`` tree; the
frontend and its dependency chain are stdlib-only, so this works in the
install-free docs CI job.

Exit status 0 = clean, 1 = at least one broken link or pointer (each is
printed on its own line).  Run it directly:

    python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Set

#: ``path/to/file.py:Symbol`` or ``path/to/file.py:Class.member`` in backticks.
POINTER = re.compile(r"`([A-Za-z0-9_\-./]+\.py):([A-Za-z_][A-Za-z0-9_.]*)`")

#: Markdown inline link targets: ``[text](target)``; the anchor part is
#: stripped, pure-anchor and external targets are skipped.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced ```knl code blocks; each must parse and instantiate cleanly.
KNL_FENCE = re.compile(r"^```knl[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)

#: Markdown files checked, relative to the repository root.
CHECKED_FILES = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/PERFORMANCE.md",
    "docs/KERNEL_DSL.md",
    "docs/SERVER.md",
    "docs/EXPLORE.md",
    "docs/LINT.md",
)

_EXTERNAL = ("http://", "https://", "mailto:")

_FRONTEND = None


def _load_frontend():
    """Import the real kernel frontend from the in-repo ``src/`` tree.

    Cached after the first call; inserted at the front of ``sys.path`` so the
    checker validates the checked-out frontend even when another repro
    installation is importable.
    """
    global _FRONTEND
    if _FRONTEND is None:
        src = str(Path(__file__).resolve().parent.parent / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        from repro import frontend

        _FRONTEND = frontend
    return _FRONTEND


def check_knl_blocks(doc: Path, root: Path) -> List[str]:
    """Parse every fenced knl block of one markdown file with the frontend.

    A block must parse *and* instantiate at each of its dataset blocks —
    an example that names an unbound parameter or a misshapen access is as
    wrong as one with a syntax error.  Reported line numbers are absolute
    positions in the markdown file.
    """
    problems: List[str] = []
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(root)
    frontend = _load_frontend()
    for number, match in enumerate(KNL_FENCE.finditer(text), start=1):
        block = match.group(1)
        offset = text[: match.start(1)].count("\n")
        try:
            program = frontend.parse_kernel(block, str(rel))
            for dataset in program.datasets:
                program.instantiate(program.dataset_sizes(dataset))
        except frontend.KernelParseError as exc:
            line = offset + (exc.line or 1)
            problems.append(f"{rel}: invalid knl block {number} (line {line}): {exc.message}")
    return problems


def module_symbols(path: Path) -> Set[str]:
    """Names a ``file.py:Symbol`` pointer may use for this module.

    Top-level classes, functions and assignment targets by bare name, plus
    every class's methods and class-body assignments as ``Class.member``.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    symbols: Set[str] = set()

    def assigned_names(node: ast.AST) -> List[str]:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            return [t.id for t in targets if isinstance(t, ast.Name)]
        return []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.add(node.name)
        elif isinstance(node, ast.ClassDef):
            symbols.add(node.name)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    symbols.add(f"{node.name}.{member.name}")
                for name in assigned_names(member):
                    symbols.add(f"{node.name}.{name}")
        else:
            symbols.update(assigned_names(node))
    return symbols


def check_file(doc: Path, root: Path) -> List[str]:
    """All broken links and pointers of one markdown file."""
    problems: List[str] = []
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(root)

    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        if not (doc.parent / target_path).exists():
            problems.append(f"{rel}: broken link -> {target}")

    for match in POINTER.finditer(text):
        file_part, symbol = match.group(1), match.group(2)
        source = root / file_part
        if not source.exists():
            problems.append(f"{rel}: pointer to missing file -> {file_part}:{symbol}")
            continue
        if symbol not in module_symbols(source):
            problems.append(f"{rel}: unresolved symbol -> {file_part}:{symbol}")

    problems.extend(check_knl_blocks(doc, root))
    return problems


def main(argv: List[str] = None) -> int:
    root = Path(__file__).resolve().parent.parent
    problems: List[str] = []
    for name in CHECKED_FILES:
        doc = root / name
        if not doc.exists():
            problems.append(f"{name}: checked documentation file is missing")
            continue
        problems.extend(check_file(doc, root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {', '.join(CHECKED_FILES)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
