#!/usr/bin/env python3
"""Self-lint gate: the verifier must pass its own corpus.

Three guarantees, enforced in CI (the ``self-lint`` job) and in the tier-1
suite (``tests/test_self_lint.py``):

* every **golden kernel** under ``examples/kernels/*.knl`` lints with zero
  error-severity diagnostics, at every dataset it declares;
* every **registered kernel** (the PolyBench suite) lints with zero errors
  at every registered dataset class;
* every **broken kernel** under ``examples/kernels/broken/*.knl`` fires
  exactly the diagnostic its ``# expect: CODE severity @ line:col``
  directive names — correct code, severity, and source location — and none
  of the *other* seeded codes, so the checks cannot silently swap or decay
  into catch-alls.

The sweep runs the static checks only (``cost=False``): the cost probe's
wall time is bounded by the budget but multiplies across ~60 kernel×dataset
pairs, and its trip/no-trip prediction is covered separately by the
acceptance test in ``tests/test_verify.py``.

Exit status 0 = clean, 1 = at least one violation (each printed on its own
line).  Run it directly:

    python tools/self_lint.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
KERNEL_DIR = ROOT / "examples" / "kernels"
BROKEN_DIR = KERNEL_DIR / "broken"

#: ``# expect: CODE severity @ line:col`` directives in broken kernels.
EXPECT = re.compile(
    r"^#\s*expect:\s*(?P<code>[A-Z-]+)\s+(?P<severity>error|warning|info)"
    r"\s+@\s+(?P<line>\d+):(?P<col>\d+)\s*$",
    re.MULTILINE,
)

#: The codes seeded across the broken corpus; each broken kernel must fire
#: its own and stay silent on the other two.
SEEDED_CODES = ("OOB", "DEAD", "SCHED")


def _ensure_import_path() -> None:
    src = ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))


def _rel(path: Path) -> Path:
    """``path`` relative to the repo root when possible (for messages)."""
    try:
        return path.relative_to(ROOT)
    except ValueError:
        return path


def lint_golden(errors: List[str]) -> int:
    """Golden ``.knl`` files: zero error-severity findings at every dataset."""
    from repro.frontend import KernelParseError, parse_kernel_path
    from repro.verify import verify_program

    checked = 0
    for path in sorted(KERNEL_DIR.glob("*.knl")):
        rel = _rel(path)
        try:
            program = parse_kernel_path(str(path))
        except KernelParseError as exc:
            errors.append(f"{rel}: failed to parse: {exc.render()}")
            continue
        for dataset in program.datasets:
            checked += 1
            report = verify_program(program, dataset, cost=False)
            for diag in report.diagnostics:
                if diag.severity == "error":
                    errors.append(f"{rel} [{dataset}]: {diag.render()}")
    return checked


def lint_registered(errors: List[str]) -> int:
    """Every registered kernel x dataset: zero error-severity findings."""
    from repro.api import registry
    from repro.verify import verify_scop

    checked = 0
    for entry in registry.kernel_entries():
        for dataset in entry.datasets:
            checked += 1
            try:
                scop = entry.build(dataset)
            except Exception as exc:  # noqa: BLE001 - report, keep sweeping
                errors.append(f"kernel {entry.name} [{dataset}]: build failed: {exc}")
                continue
            report = verify_scop(scop, dataset=dataset, cost=False)
            for diag in report.diagnostics:
                if diag.severity == "error":
                    errors.append(f"kernel {entry.name} [{dataset}]: {diag.render()}")
    return checked


def lint_broken(errors: List[str]) -> int:
    """Broken ``.knl`` files: exactly the seeded diagnostic, at its location."""
    from repro.frontend import KernelParseError, parse_kernel_path
    from repro.verify import verify_program

    checked = 0
    for path in sorted(BROKEN_DIR.glob("*.knl")):
        rel = _rel(path)
        checked += 1
        text = path.read_text(encoding="utf-8")
        expects = list(EXPECT.finditer(text))
        if not expects:
            errors.append(f"{rel}: no '# expect: CODE severity @ line:col' directive")
            continue
        try:
            program = parse_kernel_path(str(path))
        except KernelParseError as exc:
            errors.append(f"{rel}: failed to parse: {exc.render()}")
            continue
        report = verify_program(program, cost=False)
        fired = {
            (d.code, d.severity, d.location.line if d.location else None,
             d.location.col if d.location else None)
            for d in report.diagnostics
        }
        expected_codes = set()
        for match in expects:
            expected_codes.add(match["code"])
            want = (
                match["code"],
                match["severity"],
                int(match["line"]),
                int(match["col"]),
            )
            if want not in fired:
                got = "; ".join(d.render() for d in report.diagnostics) or "nothing"
                errors.append(
                    f"{rel}: expected {want[0]} {want[1]} @ {want[2]}:{want[3]}, got: {got}"
                )
        for code in SEEDED_CODES:
            if code in expected_codes:
                continue
            stray = [d for d in report.diagnostics if d.code == code]
            if stray:
                errors.append(
                    f"{rel}: unexpected {code} finding(s): "
                    + "; ".join(d.render() for d in stray)
                )
    return checked


def main() -> int:
    _ensure_import_path()
    errors: List[str] = []
    golden = lint_golden(errors)
    registered = lint_registered(errors)
    broken = lint_broken(errors)
    for line in errors:
        print(line)
    status = "FAILED" if errors else "ok"
    print(
        f"self-lint {status}: {golden} golden, {registered} registered, "
        f"{broken} broken kernel(s) checked, {len(errors)} violation(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
