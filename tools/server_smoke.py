#!/usr/bin/env python3
"""Black-box smoke test of ``repro-haystack serve`` (CI's server gate).

Launches a *real* server subprocess — ephemeral port, process workers, a
fresh sqlite store — and asserts the service guarantees end to end:

* a registered-kernel job and an inline ``.knl`` job both analyze cleanly,
  and a rerun of each is served from the store (``meta.cached``);
* the server's result payload is **byte-identical** to an offline
  ``Session.analyze()`` reading the same store;
* a duplicate pair inside one ``/v1/batch`` call coalesces onto a single
  engine job (``meta.coalesced`` on exactly one record, ``/stats`` agrees);
* a request over the admission budget ceiling is shed with 429/``budget``;
* a ``/v1/explore`` tile × capacity grid ranks from one analysis per tile
  and its table digest matches the offline ``Session.explore()`` against
  the same store;
* ``/stats`` accounts for every engine job with zero errors.

Stdlib plus the in-repo package only.  Exit status 0 = pass; any failure
prints one line and exits 1.  Run it directly:

    python tools/server_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.server.client import ServerClient  # noqa: E402


def _wait_for_port(port_file: Path, process: subprocess.Popen, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(f"server exited early with status {process.returncode}")
        if port_file.exists():
            text = port_file.read_text(encoding="utf-8").strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise AssertionError(f"server wrote no port file within {timeout:.0f}s")


def main() -> int:
    gemm_source = (ROOT / "examples" / "kernels" / "gemm.knl").read_text(encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="repro-server-smoke-") as tmp:
        store_spec = f"sqlite:{tmp}/store.sqlite"
        port_file = Path(tmp) / "port"
        # Stderr goes to a file, not a pipe: the pool's worker processes
        # inherit the stream, and a pipe would make the final read block on
        # them instead of the server.  A fresh session lets the SIGKILL
        # fallback reap the whole process group.
        stderr_path = Path(tmp) / "stderr.log"
        with open(stderr_path, "w", encoding="utf-8") as stderr_handle:
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--port", "0", "--port-file", str(port_file),
                    "--workers", "2", "--max-budget", "100000",
                    "--store-path", store_spec,
                ],
                cwd=ROOT,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=stderr_handle,
                start_new_session=True,
            )
        try:
            port = _wait_for_port(port_file, process)
            client = ServerClient("127.0.0.1", port)
            client.wait_ready()

            # Registered kernel: fresh compute, then a store-served rerun.
            job = {"kernel": "gemm", "budget": 2000}
            envelope = client.analyze(job)
            assert envelope["meta"]["kernel"] == "gemm", envelope["meta"]
            assert envelope["meta"]["cached"] is False, envelope["meta"]
            assert envelope["result"]["levels"], "result payload has no levels"
            rerun = client.analyze(dict(job))
            assert rerun["meta"]["cached"] is True, rerun["meta"]
            assert json.dumps(rerun["result"], sort_keys=True) == json.dumps(
                envelope["result"], sort_keys=True
            ), "store rerun diverged from the computed payload"

            # Inline .knl source through the real frontend.
            inline = client.analyze({"source": gemm_source, "budget": 2000})
            assert inline["meta"]["kernel"] == "gemm", inline["meta"]
            assert inline["result"]["levels"], "inline result payload has no levels"

            # Duplicate pair in one batch: exactly one engine job, one
            # coalesced response (deterministic — both jobs are admitted
            # before the leader can finish).
            probe = {"source": gemm_source, "dataset": "small", "budget": 2000}
            records = list(client.batch_iter([probe, dict(probe)]))
            assert len(records) == 2 and all(r["status"] == 200 for r in records), records
            coalesced = [r for r in records if r["body"]["meta"]["coalesced"]]
            assert len(coalesced) == 1, f"expected 1 coalesced record, got {len(coalesced)}"

            # Over-ceiling budget must be shed, not queued.
            status, body = client.request(
                "POST", "/v1/analyze", {"kernel": "gemm", "budget": 200000}
            )
            assert status == 429 and body.get("shed") == "budget", (status, body)

            # Design-space explorer: a tile x capacity grid from 2 analyses,
            # with the ranked-table digest matching the offline explorer
            # against the same store (docs/EXPLORE.md).
            explore = client.explore({
                "kernel": "gemm", "levels": [32768],
                "tiles": [1, 2], "capacities": [1024, 32768], "budget": 2000,
            })
            assert explore["meta"]["kernel"] == "gemm", explore["meta"]
            assert explore["meta"]["analyses"] == 2, explore["meta"]
            assert explore["explore"]["grid_size"] == 4, explore["explore"]["grid_size"]
            assert any(row["pareto"] for row in explore["explore"]["configs"])

            stats = client.stats()
            assert stats["errors"] == 0, stats
            # gemm + inline mini + inline small + 2 explore sub-analyses
            assert stats["engine_jobs"] == 5, stats
            assert stats["coalesced"] >= 1, stats
            assert stats["shed_budget"] == 1, stats
            assert stats["store"]["hits"] >= 1, stats

            # Offline byte-identity: the CLI-side session reads the entry
            # the server wrote and produces the identical payload.
            from repro.api import Session

            offline = Session().budget(2000).store(store_spec).analyze("gemm", "mini")
            assert json.dumps(offline.to_dict(), sort_keys=True) == json.dumps(
                envelope["result"], sort_keys=True
            ), "offline Session.analyze() payload differs from the server's"

            offline_grid = (
                Session().machine((32768,)).budget(2000).store(store_spec)
                .explore("gemm", tiles=[1, 2], capacities=[1024, 32768])
            )
            assert offline_grid.table_digest() == explore["meta"]["table_digest"], (
                "offline Session.explore() table digest differs from the server's"
            )
        finally:
            # SIGINT to the server only (not the group): the CLI's
            # KeyboardInterrupt path shuts the pool down cleanly.
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait()
        stderr = stderr_path.read_text(encoding="utf-8")
        if "Traceback" in stderr:
            raise AssertionError(f"server logged a traceback:\n{stderr}")

    print(
        "server smoke OK: analyze, inline source, store rerun, coalesce, shed, "
        "explore, offline identity"
    )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as exc:
        print(f"server smoke FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
